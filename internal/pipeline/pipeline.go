// Package pipeline implements UPlan's concurrent batch-conversion
// subsystem: a worker-pool fan-out that consumes a stream of (dialect,
// serialized-plan) records, converts each record to the unified
// representation, and aggregates per-dialect statistics (throughput,
// parse errors, merged operation histograms).
//
// Two entry points:
//
//   - ConvertBatch converts a slice of records and returns results indexed
//     like the input plus the aggregate stats — the corpus-at-once API.
//   - New returns a streaming Pipeline: Submit records from any number of
//     goroutines, read Results as they complete (optionally in submission
//     order), Close once every Submit has returned, then read Stats.
//
// Dispatch is chunked: records travel to the workers in slices of
// Options.ChunkSize (default 32 for batches; 1 — immediate per-record
// hand-off — for streams) rather than one channel send per record, and
// each worker folds its statistics into thread-local aggregates that
// merge into the pipeline exactly once, at drain. ConvertBatch goes
// further — the input slice itself is the work queue, carved into chunks
// by an atomic cursor, and workers write results straight into disjoint
// slots of the output slice, so a batch performs no per-record
// synchronization at all. That keeps the pipeline competitive with the
// sequential cached path even on small corpora, where per-record channel
// operations used to dominate.
//
// Each worker keeps one converter per dialect for its lifetime, and all
// workers share a single registry, so a batch of n records performs n
// parses — not n registry constructions, which is what the one-shot
// convert.Convert path costs. Name resolution inside the workers reads
// the registry's immutable snapshot (see core.Registry), so workers never
// serialize on a registry lock even while a client concurrently registers
// new keywords.
package pipeline

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"time"

	"uplan/internal/convert"
	"uplan/internal/core"
)

// Record is one unit of work: a serialized plan tagged with its dialect.
type Record struct {
	// Dialect is the engine key ("postgresql", …); case-insensitive.
	Dialect string
	// Serialized is the native EXPLAIN output to convert.
	Serialized string
}

// Result pairs a record with its conversion outcome. Exactly one of Plan
// and Err is non-nil.
type Result struct {
	// Seq is the record's 0-based submission sequence number. ConvertBatch
	// results are indexed by it; streaming ordered mode emits in Seq order.
	Seq    int
	Record Record
	Plan   *core.Plan
	Err    error
}

// DefaultChunkSize is the records-per-dispatch unit ConvertBatch uses
// when Options.ChunkSize is unset. The streaming Pipeline defaults to
// per-record dispatch (ChunkSize 1) instead: a submitted record reaches
// a worker immediately, so submit-then-wait callers keep working and
// chunking stays an explicit opt-in for throughput-oriented streams.
const DefaultChunkSize = 32

// Options configures a Pipeline.
type Options struct {
	// Workers is the number of concurrent conversion workers.
	// Non-positive values use GOMAXPROCS. ConvertBatch additionally
	// clamps the count to GOMAXPROCS (and to the number of chunks):
	// conversion is CPU-bound, so goroutines beyond the schedulable
	// cores only add overhead. The streaming Pipeline honors the
	// requested count as-is.
	Workers int
	// Buffer is the capacity, in chunks, of the bounded input and output
	// channels of the streaming pipeline. Non-positive values use
	// 2×Workers.
	Buffer int
	// ChunkSize is how many records form one dispatch unit. Larger chunks
	// amortize channel and scheduling overhead; smaller chunks lower
	// streaming latency (Submit holds records back until a chunk fills or
	// Close flushes). Non-positive values default to DefaultChunkSize in
	// ConvertBatch and to 1 — per-record dispatch, the historical Submit
	// semantics — in the streaming Pipeline.
	ChunkSize int
	// Ordered, when true, emits results in submission (Seq) order; a small
	// reorder buffer holds results that complete ahead of their turn.
	// When false, results are emitted as workers finish them.
	Ordered bool
	// ReuseArenas, when true, gives every worker one core.PlanArena for
	// its whole lifetime: each record is decoded into the arena (owned-
	// batch mode), the resulting plan is detached with Plan.Clone before
	// it escapes into the Result, and the arena is Reset for the next
	// record. A warmed-up worker therefore builds plans with zero slab
	// allocations and pays one compact copy per result, keeping per-
	// worker memory bounded by the largest plan seen instead of the sum
	// of all plans. When false, conversions go through the converters'
	// default Convert path, which borrows an arena from a process-wide
	// pool and detaches the result the same way — the flag chooses
	// worker-owned arenas over pool traffic, not arenas over none.
	ReuseArenas bool
	// Registry backs the workers' converters. Nil uses the process-wide
	// shared default registry (convert.SharedRegistry).
	Registry *core.Registry
	// Context, when non-nil, cancels a ConvertBatch run between chunks:
	// records not yet claimed when the context is done are skipped, and
	// their Results carry the context's error instead of a Plan. The
	// streaming Pipeline ignores it (close the input side instead).
	Context context.Context
}

// withDefaults resolves zero values to the documented defaults;
// chunkDefault is the caller's ChunkSize fallback (DefaultChunkSize for
// batches, 1 for streams).
func (o Options) withDefaults(chunkDefault int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Buffer <= 0 {
		o.Buffer = 2 * o.Workers
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = chunkDefault
	}
	return o
}

func (o Options) registry() *core.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return convert.SharedRegistry()
}

// job is a sequenced record travelling from Submit to a worker.
type job struct {
	seq int
	rec Record
}

// convEntry caches one dialect's converter (or its construction error)
// inside a worker.
type convEntry struct {
	conv convert.Converter
	err  error
}

// localDialect is one dialect's worker-local aggregate. Operation counts
// for the seven canonical categories accumulate in a fixed array — one
// comparison per operation instead of one map hash — and land in the
// DialectStats histogram only when the worker merges.
type localDialect struct {
	ds  *DialectStats
	ops [7]float64
}

// worker is the per-goroutine conversion state: converter cache, an
// optional long-lived arena, plus thread-local statistics, merged into the
// shared aggregate once when the worker drains.
type worker struct {
	reg   *core.Registry
	arena *core.PlanArena // non-nil iff Options.ReuseArenas
	convs map[string]convEntry
	local map[string]*localDialect
}

func newWorker(reg *core.Registry, reuseArenas bool) *worker {
	w := &worker{
		reg:   reg,
		convs: map[string]convEntry{},
		local: map[string]*localDialect{},
	}
	if reuseArenas {
		w.arena = core.NewPlanArena()
	}
	return w
}

// do converts one record into res — written in place, so batch workers
// fill their output slots without an intermediate copy — and updates the
// worker-local stats. In owned-batch mode (ReuseArenas) the plan is built
// in the worker's arena and detached with Plan.Clone before it escapes:
// the Result must stay valid after the arena is reset for the next record.
//uplan:hotpath
func (w *worker) do(res *Result, seq int, rec Record) {
	key := strings.ToLower(rec.Dialect)
	e, ok := w.convs[key]
	if !ok {
		//lint:allow hotalloc once per (worker, dialect) cache miss, not per record
		c, err := convert.For(key, w.reg)
		e = convEntry{conv: c, err: err}
		w.convs[key] = e
	}

	res.Seq, res.Record = seq, rec
	switch {
	case e.err != nil:
		res.Err = e.err
	case w.arena != nil:
		if ac, ok := e.conv.(convert.ArenaConverter); ok {
			w.arena.Reset()
			res.Plan, res.Err = ac.ConvertIn(rec.Serialized, w.arena)
			if res.Err == nil {
				res.Plan = res.Plan.Clone() // detach from the reused arena
			} else {
				res.Plan = nil
			}
		} else {
			// Registry-extended custom converters may predate the arena
			// API; fall back to their one-shot path.
			res.Plan, res.Err = e.conv.Convert(rec.Serialized)
		}
	default:
		res.Plan, res.Err = e.conv.Convert(rec.Serialized)
	}

	ld := w.local[key]
	if ld == nil {
		ld = &localDialect{ds: &DialectStats{Dialect: key, Operations: core.CategoryHistogram{}}}
		w.local[key] = ld
	}
	ld.ds.Records++
	if res.Err != nil {
		ld.ds.Errors++
		if ld.ds.FirstError == nil {
			ld.ds.FirstError = res.Err
		}
	} else {
		ld.ds.Converted++
		ld.countOps(res.Plan.Root)
	}
}

// countOps tallies the subtree's operations: canonical categories go to
// the fixed array, anything else (plans hand-built with custom
// categories) straight to the histogram map.
func (ld *localDialect) countOps(n *core.Node) {
	if n == nil {
		return
	}
	if i := core.CategoryIndex(n.Op.Category); i >= 0 {
		ld.ops[i]++
	} else {
		ld.ds.Operations[n.Op.Category]++
	}
	for _, c := range n.Children {
		ld.countOps(c)
	}
}

// drain folds the array counts into the histogram and returns the
// completed per-dialect aggregate.
func (ld *localDialect) drain() *DialectStats {
	for i, n := range ld.ops {
		if n != 0 {
			ld.ds.Operations[core.OperationCategories[i]] += n
		}
	}
	return ld.ds
}

// Pipeline is a running worker pool. Create with New; the zero value is
// not usable.
type Pipeline struct {
	opts Options

	// mu guards seq and the pending (not yet dispatched) chunk.
	mu      sync.Mutex
	seq     int
	pending []job

	in  chan []job
	out chan Result

	workers sync.WaitGroup

	statsMu sync.Mutex
	stats   Stats
	start   time.Time
}

// New starts a pipeline's workers and returns it. The caller must consume
// Results (the output channel is bounded; workers block when it fills)
// and must Close the pipeline once every Submit has returned. Records are
// dispatched in chunks of Options.ChunkSize, which defaults to 1 here —
// per-record hand-off, so a caller may wait for a result between
// Submits. Set it higher (e.g. DefaultChunkSize) for throughput-oriented
// streams; a submitted record then reaches a worker when its chunk fills
// or when Close flushes the remainder.
func New(opts Options) *Pipeline {
	opts = opts.withDefaults(1)
	p := &Pipeline{
		opts:  opts,
		in:    make(chan []job, opts.Buffer),
		out:   make(chan Result, opts.Buffer),
		start: time.Now(),
	}
	p.stats.Dialects = map[string]*DialectStats{}

	reg := opts.registry()

	// Workers send per-chunk result slices to sink; the forwarder fans
	// them out to the public per-record channel, reordering when
	// requested, and closes it once the last worker drains.
	sink := make(chan []Result, opts.Buffer)
	go p.forward(sink)
	p.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.runWorker(reg, sink)
	}
	go func() {
		p.workers.Wait()
		p.statsMu.Lock()
		p.stats.Elapsed = time.Since(p.start)
		p.statsMu.Unlock()
		close(sink)
	}()
	return p
}

// Submit enqueues one record and returns its sequence number, blocking
// while the record's chunk is flushing into a full input buffer. Submit
// is safe for concurrent use from multiple goroutines; calling it after
// Close panics.
func (p *Pipeline) Submit(rec Record) int {
	// Per-record mode (ChunkSize 1) pays one small slice allocation per
	// Submit (and one per result in the worker) in exchange for
	// immediate hand-off; that is noise next to a conversion's own
	// allocations, and throughput-oriented callers raise ChunkSize.
	p.mu.Lock()
	seq := p.seq
	p.seq++
	p.pending = append(p.pending, job{seq: seq, rec: rec})
	var flush []job
	if len(p.pending) >= p.opts.ChunkSize {
		flush = p.pending
		p.pending = make([]job, 0, p.opts.ChunkSize)
	}
	p.mu.Unlock()
	if flush != nil {
		p.in <- flush
	}
	return seq
}

// Close signals that no further records will be submitted, flushing any
// partial chunk. It must be called exactly once, after every Submit has
// returned; workers drain the remaining input and then the Results
// channel closes.
func (p *Pipeline) Close() {
	p.mu.Lock()
	flush := p.pending
	p.pending = nil
	p.mu.Unlock()
	if len(flush) > 0 {
		p.in <- flush
	}
	close(p.in)
}

// Results returns the output channel. It closes after Close once every
// submitted record's result has been emitted.
func (p *Pipeline) Results() <-chan Result { return p.out }

// Stats returns a snapshot of the aggregate statistics. Workers fold
// their local aggregates in when they finish, so the snapshot is complete
// once Results has closed (or been fully drained); mid-run it only
// reflects workers that have already exited.
func (p *Pipeline) Stats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats.clone()
}

// runWorker converts chunks until the input closes, then merges its local
// stats into the pipeline — one mutex acquisition per worker lifetime,
// not one per record.
func (p *Pipeline) runWorker(reg *core.Registry, sink chan<- []Result) {
	defer p.workers.Done()
	w := newWorker(reg, p.opts.ReuseArenas)
	for chunk := range p.in {
		results := make([]Result, len(chunk))
		for i, j := range chunk {
			w.do(&results[i], j.seq, j.rec)
		}
		sink <- results
	}
	p.statsMu.Lock()
	for key, ld := range w.local {
		p.stats.merge(key, ld.drain())
	}
	p.statsMu.Unlock()
}

// forward fans per-chunk result slices out to the public per-record
// channel. In ordered mode it buffers results that complete ahead of
// their turn and releases them in Seq order; sequence numbers are dense,
// so the pending map fully drains by the time sink closes.
func (p *Pipeline) forward(sink <-chan []Result) {
	defer close(p.out)
	if !p.opts.Ordered {
		for rs := range sink {
			for _, r := range rs {
				p.out <- r
			}
		}
		return
	}
	pending := map[int]Result{}
	next := 0
	for rs := range sink {
		for _, r := range rs {
			pending[r.Seq] = r
		}
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			p.out <- r
		}
	}
}

// ConvertBatch converts records through a transient chunked worker pool
// and returns the results indexed like the input (results[i] is
// records[i]'s outcome) plus the aggregate statistics. Per-record
// failures — unknown dialects, malformed plans — are reported in the
// matching Result.Err and counted in the stats; they do not stop the
// batch.
//
// Unlike the streaming Pipeline, ConvertBatch uses no channels at all:
// workers claim chunks of the input slice through an atomic cursor and
// write results into disjoint regions of the output slice.
func ConvertBatch(records []Record, opts Options) ([]Result, Stats) {
	opts = opts.withDefaults(DefaultChunkSize)
	out := make([]Result, len(records))
	stats := Stats{Dialects: map[string]*DialectStats{}}
	start := time.Now()
	reg := opts.registry()

	// The claim-a-chunk/private-worker-state/merge-once-at-drain machinery
	// lives in ForEachChunkedCtx (clamping workers to GOMAXPROCS and to
	// the chunk count, running single-worker pools inline); ConvertBatch
	// supplies the conversion worker and its stat merge.
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ForEachChunkedCtx(ctx, len(records), opts.Workers, opts.ChunkSize,
		func() *worker { return newWorker(reg, opts.ReuseArenas) },
		func(w *worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				w.do(&out[i], i, records[i])
			}
		},
		func(w *worker) {
			for key, ld := range w.local {
				stats.merge(key, ld.drain())
			}
		})
	if err := ctx.Err(); err != nil {
		// Chunks unclaimed at cancellation were never converted; their
		// slots still hold the zero Result. Mark them so the "exactly one
		// of Plan and Err" contract holds for every returned slot.
		for i := range out {
			if out[i].Plan == nil && out[i].Err == nil {
				out[i] = Result{Seq: i, Record: records[i], Err: err}
			}
		}
	}
	stats.Elapsed = time.Since(start)
	return out, stats
}
