package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachChunkedCtxDeadlineMidChunk: a deadline that expires while
// chunks are in flight lets those chunks complete (the pool cannot
// preempt a body), never starts an unclaimed chunk afterwards, still
// runs every started worker's drain, and returns without deadlock. The
// gate holds every claimed chunk in flight until after the deadline has
// provably fired, so the mid-chunk expiry is deterministic, not a race
// the test usually wins.
func TestForEachChunkedCtxDeadlineMidChunk(t *testing.T) {
	const n, chunk, workers = 64, 4, 2
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	gate := make(chan struct{})
	var processed [n]atomic.Int32
	var chunks, drains atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		ForEachChunkedCtx(ctx, n, workers, chunk,
			func() struct{} { return struct{}{} },
			func(_ struct{}, lo, hi int) {
				<-gate // in flight across the deadline
				chunks.Add(1)
				for i := lo; i < hi; i++ {
					processed[i].Add(1)
				}
			},
			func(struct{}) { drains.Add(1) })
	}()

	<-ctx.Done() // every claimed chunk is now mid-body
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not return after deadline expiry and gate release")
	}

	// The in-flight chunks completed — one per worker that ran (the pool
	// clamps workers to GOMAXPROCS, so 1 on a single-CPU runner).
	got := int(chunks.Load())
	if got == 0 {
		t.Fatal("no in-flight chunk completed")
	}
	if got > workers {
		t.Errorf("%d chunks completed after the deadline, want at most %d in-flight", got, workers)
	}
	// Chunk atomicity: each chunk fully processed or untouched.
	for lo := 0; lo < n; lo += chunk {
		first := processed[lo].Load()
		if first > 1 {
			t.Fatalf("index %d processed %d times", lo, first)
		}
		for i := lo; i < lo+chunk && i < n; i++ {
			if processed[i].Load() != first {
				t.Fatalf("chunk [%d,%d) partially processed", lo, lo+chunk)
			}
		}
	}
	if drains.Load() == 0 {
		t.Error("no worker drained after deadline expiry")
	}
}

// TestConvertBatchDeadlineExpired: a deadline already expired at submit
// converts nothing; every slot keeps its identity and carries
// context.DeadlineExceeded (the deadline sibling of the Canceled test in
// pool_test.go).
func TestConvertBatchDeadlineExpired(t *testing.T) {
	recs := fixtures(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results, stats := ConvertBatch(recs, Options{Workers: 2, ChunkSize: 1, Context: ctx})
	if len(results) != len(recs) {
		t.Fatalf("got %d results for %d records", len(results), len(recs))
	}
	for i, r := range results {
		if r.Plan != nil {
			t.Errorf("record %d converted after its deadline", i)
		}
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("record %d: Err = %v, want context.DeadlineExceeded", i, r.Err)
		}
		if r.Seq != i || r.Record != recs[i] {
			t.Errorf("record %d: unprocessed slot lost its identity", i)
		}
	}
	if stats.Converted != 0 {
		t.Errorf("stats.Converted = %d on a pre-expired deadline", stats.Converted)
	}
}

// TestConvertBatchDeadlineMidRun: a deadline that expires somewhere in
// the middle of a batch preserves the exactly-one-of-Plan-or-Err
// contract on every slot, and every error on this all-valid corpus is
// the deadline, never a conversion failure. The assertions are
// invariants, so the test holds whether the machine finishes 0, some,
// or all records before the deadline.
func TestConvertBatchDeadlineMidRun(t *testing.T) {
	base := fixtures(t)
	recs := make([]Record, 0, len(base)*40)
	for i := 0; i < 40; i++ {
		recs = append(recs, base...)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	results, stats := ConvertBatch(recs, Options{Workers: 2, ChunkSize: 1, Context: ctx})
	if len(results) != len(recs) {
		t.Fatalf("got %d results for %d records", len(results), len(recs))
	}
	converted, deadlined := 0, 0
	for i, r := range results {
		switch {
		case r.Plan != nil && r.Err == nil:
			converted++
		case r.Plan == nil && errors.Is(r.Err, context.DeadlineExceeded):
			deadlined++
		default:
			t.Fatalf("record %d: Plan=%v Err=%v violates exactly-one-of", i, r.Plan != nil, r.Err)
		}
	}
	if converted+deadlined != len(recs) {
		t.Errorf("%d converted + %d deadlined != %d records", converted, deadlined, len(recs))
	}
	if stats.Converted != converted {
		t.Errorf("stats.Converted = %d, counted %d", stats.Converted, converted)
	}
	// Stats are per-dialect conversion aggregates: a record no worker ever
	// claimed is not a conversion error, so the all-valid corpus reports
	// zero — the deadline shows up in the per-slot Err values instead.
	if stats.Errors != 0 {
		t.Errorf("stats.Errors = %d on an all-valid corpus, want 0 (deadline slots are not conversion errors)", stats.Errors)
	}
}

// TestForEachChunkedCtxGoroutineSettle: cancelled and deadline-expired
// pools leave no workers behind — the goroutine count settles back to
// its starting neighbourhood after many interrupted runs.
func TestForEachChunkedCtxGoroutineSettle(t *testing.T) {
	start := runtime.NumGoroutine()
	for round := 0; round < 25; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		ForEachChunkedCtx(ctx, 10_000, 4, 8,
			func() struct{} { return struct{}{} },
			func(_ struct{}, lo, hi int) {
				if lo == 0 {
					cancel() // mix immediate cancels in with deadline expiries
				}
			},
			func(struct{}) {})
		cancel()
	}
	// ForEachChunkedCtx joins its workers before returning, so the count
	// should settle promptly; the loop only absorbs runtime background
	// noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= start+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: started with %d, still %d", start, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
