package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachChunkedCtxCancel: after cancellation workers stop claiming,
// every index is processed at most once, every started worker drains, and
// the call returns without processing the full range.
func TestForEachChunkedCtxCancel(t *testing.T) {
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var processed [n]atomic.Int32
	var count atomic.Int32
	var drains atomic.Int32
	ForEachChunkedCtx(ctx, n, 4, 8,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int) {
			for i := lo; i < hi; i++ {
				if processed[i].Add(1) != 1 {
					t.Errorf("index %d processed twice", i)
				}
			}
			if count.Add(int32(hi-lo)) > n/4 {
				cancel()
			}
		},
		func(struct{}) { drains.Add(1) })
	if got := int(count.Load()); got == n {
		t.Error("cancellation did not stop the pool before completion")
	}
	if drains.Load() == 0 {
		t.Error("no worker drained")
	}
	// Sanity: the processed set is a prefix-dense claim set — each chunk
	// fully processed or untouched, never half-done.
	for i := 0; i < n; i += 8 {
		hi := i + 8
		if hi > n {
			hi = n
		}
		first := processed[i].Load()
		for j := i; j < hi; j++ {
			if processed[j].Load() != first {
				t.Fatalf("chunk [%d,%d) partially processed", i, hi)
			}
		}
	}
}

// TestForEachChunkedCtxCancelInline: the single-worker inline path honours
// cancellation between chunks too.
func TestForEachChunkedCtxCancelInline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	ForEachChunkedCtx(ctx, 100, 1, 10,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int) {
			ran += hi - lo
			if ran >= 30 {
				cancel()
			}
		},
		func(struct{}) {})
	if ran != 30 {
		t.Errorf("inline pool ran %d indexes after cancel at 30", ran)
	}
}

// TestConvertBatchCancelled: records unclaimed at cancellation come back
// with the context's error, preserving the one-of-Plan-or-Err contract on
// every slot; a pre-cancelled context converts nothing.
func TestConvertBatchCancelled(t *testing.T) {
	recs := fixtures(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, _ := ConvertBatch(recs, Options{Workers: 2, ChunkSize: 1, Context: ctx})
	if len(results) != len(recs) {
		t.Fatalf("got %d results for %d records", len(results), len(recs))
	}
	for i, r := range results {
		if r.Plan != nil {
			t.Errorf("record %d converted after pre-cancellation", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("record %d: Err = %v, want context.Canceled", i, r.Err)
		}
		if r.Seq != i || r.Record != recs[i] {
			t.Errorf("record %d: unprocessed slot lost its identity", i)
		}
	}
}

// TestForEachChunkedDrainsOnce: the uncancellable wrapper still drains each
// worker exactly once (guards the delegation refactor).
func TestForEachChunkedDrainsOnce(t *testing.T) {
	var mu sync.Mutex
	total := 0
	drains := 0
	ForEachChunked(1000, 8, 16,
		func() *int { v := 0; return &v },
		func(s *int, lo, hi int) { *s += hi - lo },
		func(s *int) {
			mu.Lock()
			total += *s
			drains++
			mu.Unlock()
		})
	if total != 1000 {
		t.Errorf("processed %d indexes, want 1000", total)
	}
	if drains == 0 {
		t.Error("no drains ran")
	}
}
