package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"uplan/internal/core"
	"uplan/internal/dbms"
)

// fixtures generates one serialized plan per engine (default format) over
// a small shared schema.
func fixtures(t testing.TB) []Record {
	t.Helper()
	const q = "SELECT t0.c2, COUNT(*) FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c1 > 5 GROUP BY t0.c2"
	var recs []Record
	for _, name := range dbms.Names() {
		e := dbms.MustNew(name)
		for _, s := range []string{
			"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
			"CREATE TABLE t1 (c0 INT, v TEXT)",
			"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a')",
			"INSERT INTO t1 VALUES (1, 'x'), (3, 'y')",
		} {
			if _, err := e.Execute(s); err != nil {
				t.Fatalf("%s: seed: %v", name, err)
			}
		}
		if err := e.Analyze(); err != nil {
			t.Fatal(err)
		}
		out, err := e.Explain(q, e.DefaultFormat())
		if err != nil {
			t.Fatalf("%s: explain: %v", name, err)
		}
		recs = append(recs, Record{Dialect: name, Serialized: out})
	}
	return recs
}

func TestConvertBatchAllDialects(t *testing.T) {
	recs := fixtures(t)
	results, stats := ConvertBatch(recs, Options{Workers: 4})

	if len(results) != len(recs) {
		t.Fatalf("got %d results for %d records", len(results), len(recs))
	}
	for i, r := range results {
		if r.Seq != i {
			t.Errorf("results[%d].Seq = %d, want %d", i, r.Seq, i)
		}
		if r.Record.Dialect != recs[i].Dialect {
			t.Errorf("results[%d] is for %q, want %q", i, r.Record.Dialect, recs[i].Dialect)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", recs[i].Dialect, r.Err)
			continue
		}
		if err := r.Plan.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", recs[i].Dialect, err)
		}
	}
	if stats.Records != len(recs) || stats.Converted != len(recs) || stats.Errors != 0 {
		t.Errorf("stats = %d/%d/%d, want %d/%d/0",
			stats.Records, stats.Converted, stats.Errors, len(recs), len(recs))
	}
	if len(stats.Dialects) != len(recs) {
		t.Errorf("stats cover %d dialects, want %d", len(stats.Dialects), len(recs))
	}
	if stats.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", stats.Elapsed)
	}
	if stats.PlansPerSec() <= 0 {
		t.Errorf("plans/sec = %v, want > 0", stats.PlansPerSec())
	}
}

// TestConvertBatchReuseArenas is the owned-batch arena mode's correctness
// and race test: many records per worker force repeated Reset/Clone
// cycles, results must match the default mode plan-for-plan, and every
// returned plan must be fully detached (still valid after the workers —
// and their arenas — are gone). Run under -race with multiple workers this
// also proves per-worker arenas never leak across goroutines.
func TestConvertBatchReuseArenas(t *testing.T) {
	base := fixtures(t)
	var recs []Record
	for i := 0; i < 16; i++ { // enough repeats that every worker reuses its arena
		recs = append(recs, base...)
	}
	want, _ := ConvertBatch(recs, Options{Workers: 4})
	got, stats := ConvertBatch(recs, Options{Workers: 4, ReuseArenas: true, ChunkSize: 3})
	if stats.Errors != 0 {
		t.Fatalf("reuse-arena batch reported %d errors", stats.Errors)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("record %d (%s): %v", i, recs[i].Dialect, got[i].Err)
		}
		if !got[i].Plan.Equal(want[i].Plan) {
			t.Errorf("record %d (%s): reuse-arena plan differs from default-mode plan",
				i, recs[i].Dialect)
		}
		if err := got[i].Plan.Validate(); err != nil {
			t.Errorf("record %d (%s): invalid detached plan: %v", i, recs[i].Dialect, err)
		}
	}
}

// TestPipelineStreamingReuseArenas covers the streaming pipeline's arena
// path (workers outlive many records).
func TestPipelineStreamingReuseArenas(t *testing.T) {
	base := fixtures(t)
	p := New(Options{Workers: 2, Ordered: true, ReuseArenas: true})
	go func() {
		for i := 0; i < 8; i++ {
			for _, r := range base {
				p.Submit(r)
			}
		}
		p.Close()
	}()
	n := 0
	for res := range p.Results() {
		if res.Err != nil {
			t.Errorf("seq %d (%s): %v", res.Seq, res.Record.Dialect, res.Err)
			continue
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("seq %d: invalid plan: %v", res.Seq, err)
		}
		n++
	}
	if want := 8 * len(base); n != want {
		t.Fatalf("drained %d results, want %d", n, want)
	}
}

// TestConvertBatchErrorAggregation drives batches with failures mixed in
// and checks per-record errors and the per-dialect aggregate counts.
func TestConvertBatchErrorAggregation(t *testing.T) {
	good := fixtures(t)
	pg := good[findDialect(t, good, "postgresql")]
	mongo := good[findDialect(t, good, "mongodb")]

	cases := []struct {
		name    string
		records []Record
		// wantErrs marks, per input index, whether that record must fail.
		wantErrs []bool
		// wantDialectErrs is the expected Errors count per dialect key.
		wantDialectErrs map[string]int
	}{
		{
			name:     "empty batch",
			records:  nil,
			wantErrs: nil,
		},
		{
			name: "unknown dialect mixed in",
			records: []Record{
				pg,
				{Dialect: "oracle", Serialized: "whatever"},
				mongo,
			},
			wantErrs:        []bool{false, true, false},
			wantDialectErrs: map[string]int{"oracle": 1},
		},
		{
			name: "malformed plans mixed in",
			records: []Record{
				pg,
				{Dialect: "postgresql", Serialized: "complete garbage {{{"},
				mongo,
				{Dialect: "mongodb", Serialized: "{not json"},
				pg,
			},
			wantErrs:        []bool{false, true, false, true, false},
			wantDialectErrs: map[string]int{"postgresql": 1, "mongodb": 1},
		},
		{
			name: "all failing",
			records: []Record{
				{Dialect: "postgresql", Serialized: ""},
				{Dialect: "nosuchdb", Serialized: ""},
			},
			wantErrs:        []bool{true, true},
			wantDialectErrs: map[string]int{"postgresql": 1, "nosuchdb": 1},
		},
		{
			name: "dialect key is case-insensitive",
			records: []Record{
				{Dialect: "PostgreSQL", Serialized: pg.Serialized},
			},
			wantErrs: []bool{false},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, stats := ConvertBatch(tc.records, Options{Workers: 3})
			if len(results) != len(tc.records) {
				t.Fatalf("got %d results for %d records", len(results), len(tc.records))
			}
			wantErrTotal := 0
			for i, wantErr := range tc.wantErrs {
				if wantErr {
					wantErrTotal++
				}
				if gotErr := results[i].Err != nil; gotErr != wantErr {
					t.Errorf("record %d: err = %v, want failure=%v", i, results[i].Err, wantErr)
				}
				if wantErr && results[i].Plan != nil {
					t.Errorf("record %d: failed record carries a plan", i)
				}
			}
			if stats.Errors != wantErrTotal {
				t.Errorf("stats.Errors = %d, want %d", stats.Errors, wantErrTotal)
			}
			if stats.Converted != len(tc.records)-wantErrTotal {
				t.Errorf("stats.Converted = %d, want %d",
					stats.Converted, len(tc.records)-wantErrTotal)
			}
			for dialect, want := range tc.wantDialectErrs {
				ds := stats.Dialects[dialect]
				if ds == nil {
					t.Errorf("no stats for dialect %q", dialect)
					continue
				}
				if ds.Errors != want {
					t.Errorf("%s: Errors = %d, want %d", dialect, ds.Errors, want)
				}
				if ds.FirstError == nil {
					t.Errorf("%s: FirstError not sampled", dialect)
				}
			}
			// The rendered table must mention every dialect seen.
			rendered := stats.String()
			for _, r := range tc.records {
				if !strings.Contains(rendered, strings.ToLower(r.Dialect)) {
					t.Errorf("stats table misses %q:\n%s", r.Dialect, rendered)
				}
			}
		})
	}
}

func findDialect(t *testing.T, recs []Record, dialect string) int {
	t.Helper()
	for i, r := range recs {
		if r.Dialect == dialect {
			return i
		}
	}
	t.Fatalf("no fixture for %q", dialect)
	return -1
}

// TestPipelineOrdered checks that ordered mode emits results in
// submission order even with many workers racing.
func TestPipelineOrdered(t *testing.T) {
	recs := fixtures(t)
	p := New(Options{Workers: 8, Buffer: 2, Ordered: true})
	const rounds = 20
	go func() {
		for i := 0; i < rounds; i++ {
			for _, r := range recs {
				p.Submit(r)
			}
		}
		p.Close()
	}()
	next := 0
	for r := range p.Results() {
		if r.Seq != next {
			t.Fatalf("got Seq %d, want %d", r.Seq, next)
		}
		if want := recs[next%len(recs)].Dialect; r.Record.Dialect != want {
			t.Fatalf("Seq %d is %q, want %q", r.Seq, r.Record.Dialect, want)
		}
		next++
	}
	if next != rounds*len(recs) {
		t.Fatalf("received %d results, want %d", next, rounds*len(recs))
	}
}

// TestPipelineUnorderedCoversAllSeqs checks that unordered mode emits
// exactly one result per submitted record.
func TestPipelineUnorderedCoversAllSeqs(t *testing.T) {
	recs := fixtures(t)
	p := New(Options{Workers: 4, Buffer: 1})
	const rounds = 10
	go func() {
		for i := 0; i < rounds; i++ {
			for _, r := range recs {
				p.Submit(r)
			}
		}
		p.Close()
	}()
	seen := map[int]bool{}
	for r := range p.Results() {
		if seen[r.Seq] {
			t.Fatalf("Seq %d emitted twice", r.Seq)
		}
		seen[r.Seq] = true
	}
	if len(seen) != rounds*len(recs) {
		t.Fatalf("received %d results, want %d", len(seen), rounds*len(recs))
	}
}

// TestPipelineConcurrentSubmitters hammers one pipeline from many
// submitting goroutines (run under -race in CI).
func TestPipelineConcurrentSubmitters(t *testing.T) {
	recs := fixtures(t)
	p := New(Options{Workers: 6, Buffer: 4})
	const (
		submitters = 8
		perSub     = 25
	)
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				p.Submit(recs[(s+i)%len(recs)])
			}
		}(s)
	}
	go func() {
		wg.Wait()
		p.Close()
	}()
	got := 0
	for r := range p.Results() {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Record.Dialect, r.Err)
		}
		got++
	}
	if got != submitters*perSub {
		t.Fatalf("received %d results, want %d", got, submitters*perSub)
	}
	stats := p.Stats()
	if stats.Records != submitters*perSub || stats.Errors != 0 {
		t.Fatalf("stats = %+v, want %d records and no errors", stats, submitters*perSub)
	}
}

// TestStatsHistogramMerge checks that per-dialect histograms equal the
// sum of the individual plans' histograms regardless of worker count.
func TestStatsHistogramMerge(t *testing.T) {
	recs := fixtures(t)
	const copies = 7

	var batch []Record
	for i := 0; i < copies; i++ {
		batch = append(batch, recs...)
	}

	results, stats := ConvertBatch(batch, Options{Workers: 5})
	want := map[string]core.CategoryHistogram{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Record.Dialect, r.Err)
		}
		h := want[r.Record.Dialect]
		if h == nil {
			h = core.CategoryHistogram{}
			want[r.Record.Dialect] = h
		}
		for cat, n := range r.Plan.Histogram() {
			h[cat] += n
		}
	}
	for dialect, wh := range want {
		ds := stats.Dialects[dialect]
		if ds == nil {
			t.Fatalf("no stats for %q", dialect)
		}
		if ds.Converted != copies {
			t.Errorf("%s: Converted = %d, want %d", dialect, ds.Converted, copies)
		}
		for cat, n := range wh {
			if ds.Operations[cat] != n {
				t.Errorf("%s: histogram[%v] = %v, want %v",
					dialect, cat, ds.Operations[cat], n)
			}
		}
	}
}

// TestStatsSnapshotIsolation checks that a Stats snapshot is a deep copy.
func TestStatsSnapshotIsolation(t *testing.T) {
	recs := fixtures(t)
	_, stats := ConvertBatch(recs, Options{Workers: 2})
	snap := stats.clone()
	for _, ds := range stats.Dialects {
		ds.Converted = -1
		ds.Operations[core.Producer] = -99
	}
	for _, ds := range snap.Dialects {
		if ds.Converted == -1 || ds.Operations[core.Producer] == -99 {
			t.Fatal("snapshot shares state with source")
		}
	}
}

// TestOptionsDefaults pins the documented zero-value behavior: batches
// default to DefaultChunkSize, streams to per-record dispatch.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(DefaultChunkSize)
	if o.Workers <= 0 {
		t.Errorf("Workers default = %d, want > 0", o.Workers)
	}
	if o.Buffer != 2*o.Workers {
		t.Errorf("Buffer default = %d, want %d", o.Buffer, 2*o.Workers)
	}
	if o.ChunkSize != DefaultChunkSize {
		t.Errorf("batch ChunkSize default = %d, want %d", o.ChunkSize, DefaultChunkSize)
	}
	if o := (Options{}).withDefaults(1); o.ChunkSize != 1 {
		t.Errorf("stream ChunkSize default = %d, want 1", o.ChunkSize)
	}
	o = Options{Workers: 3, Buffer: 9, ChunkSize: 5}.withDefaults(DefaultChunkSize)
	if o.Workers != 3 || o.Buffer != 9 || o.ChunkSize != 5 {
		t.Errorf("explicit options rewritten: %+v", o)
	}
}

// TestPipelineSubmitThenWait locks the streaming default: with ChunkSize
// unset, a caller may wait for each record's result before submitting
// the next without deadlocking on a partially filled chunk.
func TestPipelineSubmitThenWait(t *testing.T) {
	recs := fixtures(t)
	p := New(Options{Workers: 2})
	for i, r := range recs {
		seq := p.Submit(r)
		res, ok := <-p.Results()
		if !ok {
			t.Fatal("results channel closed early")
		}
		if res.Seq != seq || res.Err != nil {
			t.Fatalf("record %d: seq %d (want %d), err %v", i, res.Seq, seq, res.Err)
		}
	}
	p.Close()
	if _, ok := <-p.Results(); ok {
		t.Fatal("unexpected extra result")
	}
}

// TestConvertBatchChunkSizes checks that results and statistics are
// identical whatever the chunk size — per-record dispatch, the default,
// one oversized chunk, and a size that leaves a partial tail chunk.
func TestConvertBatchChunkSizes(t *testing.T) {
	recs := fixtures(t)
	var batch []Record
	for i := 0; i < 9; i++ {
		batch = append(batch, recs...)
	}
	// Mix in failures so error accounting is exercised too.
	batch = append(batch, Record{Dialect: "oracle", Serialized: "x"},
		Record{Dialect: "postgresql", Serialized: "garbage {{{"})

	want, wantStats := ConvertBatch(batch, Options{Workers: 1, ChunkSize: len(batch)})
	for _, cs := range []int{1, 7, DefaultChunkSize, len(batch), len(batch) * 3} {
		got, stats := ConvertBatch(batch, Options{Workers: 4, ChunkSize: cs})
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d results, want %d", cs, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != i || got[i].Record != batch[i] {
				t.Fatalf("chunk %d: result %d misplaced", cs, i)
			}
			if (got[i].Err != nil) != (want[i].Err != nil) {
				t.Errorf("chunk %d: result %d error mismatch: %v vs %v",
					cs, i, got[i].Err, want[i].Err)
			}
			if got[i].Err == nil && !got[i].Plan.Equal(want[i].Plan) {
				t.Errorf("chunk %d: result %d plan differs", cs, i)
			}
		}
		if stats.Records != wantStats.Records || stats.Converted != wantStats.Converted ||
			stats.Errors != wantStats.Errors {
			t.Errorf("chunk %d: stats %d/%d/%d, want %d/%d/%d", cs,
				stats.Records, stats.Converted, stats.Errors,
				wantStats.Records, wantStats.Converted, wantStats.Errors)
		}
	}
}

// TestPipelineFlushesPartialChunk checks that records stuck in a partial
// chunk are dispatched by Close, at every chunk size around the batch
// size.
func TestPipelineFlushesPartialChunk(t *testing.T) {
	recs := fixtures(t)
	for _, cs := range []int{1, 4, len(recs), len(recs) + 50} {
		p := New(Options{Workers: 2, ChunkSize: cs})
		go func() {
			for _, r := range recs {
				p.Submit(r)
			}
			p.Close()
		}()
		got := 0
		for r := range p.Results() {
			if r.Err != nil {
				t.Errorf("chunk %d: %s: %v", cs, r.Record.Dialect, r.Err)
			}
			got++
		}
		if got != len(recs) {
			t.Fatalf("chunk %d: received %d results, want %d", cs, got, len(recs))
		}
		if s := p.Stats(); s.Converted != len(recs) {
			t.Errorf("chunk %d: stats.Converted = %d, want %d", cs, s.Converted, len(recs))
		}
	}
}

// BenchmarkPipelineWorkers measures pipeline throughput on the fixture
// set at increasing worker counts.
func BenchmarkPipelineWorkers(b *testing.B) {
	recs := fixtures(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, _ := ConvertBatch(recs, Options{Workers: workers})
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
