package tlp

import (
	"strings"
	"testing"

	"uplan/internal/datum"
	"uplan/internal/dbms"
	"uplan/internal/exec"
)

func engine(t *testing.T) *dbms.Engine {
	t.Helper()
	e := dbms.MustNew("postgresql")
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT, c1 INT)",
		"INSERT INTO t0 VALUES (1, NULL), (2, 5), (3, 10), (NULL, 7)",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestPartitionsConsistentOnCorrectEngine(t *testing.T) {
	e := engine(t)
	for _, pred := range []string{
		"c1 > 6", "c0 IS NULL", "c1 = 5 OR c0 < 2", "NOT (c1 < 8)",
		"c0 BETWEEN 1 AND 2", "c1 IN (5, 7)",
	} {
		v, err := Check(e, "t0", pred)
		if err != nil {
			t.Fatalf("pred %q: %v", pred, err)
		}
		if v != nil {
			t.Errorf("correct engine violated TLP for %q: %v", pred, v)
		}
	}
}

func TestViolationDetectedAndRendered(t *testing.T) {
	e := engine(t)
	e.Quirks.NotIgnoresNull = true
	v, err := Check(e, "t0", "c1 > 6")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("defect not detected")
	}
	if !strings.Contains(v.Error(), "tlp:") {
		t.Errorf("violation rendering: %s", v.Error())
	}
}

func TestCheckPropagatesExecutionErrors(t *testing.T) {
	e := engine(t)
	if _, err := Check(e, "missing_table", "c1 > 6"); err == nil {
		t.Error("missing table must surface as an error")
	}
}

func TestCompareResults(t *testing.T) {
	a := &exec.Result{Rows: [][]datum.D{{datum.Int(1)}, {datum.Int(2)}}}
	b := &exec.Result{Rows: [][]datum.D{{datum.Int(2)}, {datum.Int(1)}}}
	if diff := CompareResults(a, b); diff != "" {
		t.Errorf("order-insensitive comparison broken: %s", diff)
	}
	c := &exec.Result{Rows: [][]datum.D{{datum.Int(1)}}}
	if diff := CompareResults(a, c); diff == "" {
		t.Error("cardinality difference missed")
	}
	d := &exec.Result{Rows: [][]datum.D{{datum.Int(1)}, {datum.Int(3)}}}
	if diff := CompareResults(a, d); diff == "" {
		t.Error("content difference missed")
	}
	// NULL vs 0 must differ.
	n1 := &exec.Result{Rows: [][]datum.D{{datum.Null()}}}
	n2 := &exec.Result{Rows: [][]datum.D{{datum.Int(0)}}}
	if diff := CompareResults(n1, n2); diff == "" {
		t.Error("NULL vs 0 missed")
	}
}
