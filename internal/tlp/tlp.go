// Package tlp implements Ternary Logic Partitioning (Rigger & Su, OOPSLA
// 2020), the test oracle the paper's QPG campaign uses to detect logic
// bugs: for any predicate φ, a query's result must equal the union of the
// results restricted to φ, NOT φ, and φ IS NULL.
package tlp

import (
	"fmt"
	"sort"
	"strings"

	"uplan/internal/datum"
	"uplan/internal/exec"
)

// Engine is the minimal interface TLP needs; *dbms.Engine satisfies it.
type Engine interface {
	Execute(query string) (*exec.Result, error)
}

// Violation describes a TLP mismatch.
type Violation struct {
	Base       string
	Partitions [3]string
	BaseRows   int
	UnionRows  int
	Detail     string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("tlp: %s: base has %d rows, partitions have %d (%s)",
		v.Base, v.BaseRows, v.UnionRows, v.Detail)
}

// Check runs the TLP oracle for SELECT * FROM table with the given
// predicate. It returns a Violation when the partition union differs from
// the unpartitioned result, nil when consistent, and an error for
// execution failures (which QPG reports as crash-class bugs).
func Check(e Engine, table, predicate string) (*Violation, error) {
	base := fmt.Sprintf("SELECT * FROM %s", table)
	parts := [3]string{
		fmt.Sprintf("SELECT * FROM %s WHERE %s", table, predicate),
		fmt.Sprintf("SELECT * FROM %s WHERE NOT (%s)", table, predicate),
		fmt.Sprintf("SELECT * FROM %s WHERE (%s) IS NULL", table, predicate),
	}
	baseRes, err := e.Execute(base)
	if err != nil {
		return nil, fmt.Errorf("tlp: base query: %w", err)
	}
	var union [][]datum.D
	for _, q := range parts {
		res, err := e.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("tlp: partition %q: %w", q, err)
		}
		union = append(union, res.Rows...)
	}
	if diff := multisetDiff(baseRes.Rows, union); diff != "" {
		return &Violation{
			Base:       base,
			Partitions: parts,
			BaseRows:   len(baseRes.Rows),
			UnionRows:  len(union),
			Detail:     diff,
		}, nil
	}
	return nil, nil
}

// multisetDiff compares two row multisets, returning a short description
// of the first difference or "" when equal.
func multisetDiff(a, b [][]datum.D) string {
	if len(a) != len(b) {
		return fmt.Sprintf("cardinality %d vs %d", len(a), len(b))
	}
	ka := sortedKeys(a)
	kb := sortedKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("row content differs at sorted position %d", i)
		}
	}
	return ""
}

func sortedKeys(rows [][]datum.D) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = datum.RowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// CompareResults performs differential comparison of two engines' results
// for the same query (order-insensitive). It returns "" when identical.
// QPG uses this as its second oracle alongside TLP, in the spirit of
// differential testing the paper discusses in Section VI.
func CompareResults(a, b *exec.Result) string {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	ka := sortedKeys(a.Rows)
	kb := sortedKeys(b.Rows)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("row multisets differ (first at sorted position %d: %s vs %s)",
				i, strings.TrimSpace(ka[i]), strings.TrimSpace(kb[i]))
		}
	}
	return ""
}
