package tlp

import (
	"errors"

	"uplan/internal/exec"
	"uplan/internal/oracle"
	"uplan/internal/sqlancer"
)

// OracleName is TLP's registry key.
const OracleName = "tlp"

func init() { oracle.Register(TaskOracle{}, 2) }

// TaskOracle is the standalone TLP oracle loop as an oracle.Oracle:
// partition every random predicate into φ / NOT φ / φ IS NULL and
// compare the union with the unpartitioned result.
type TaskOracle struct{}

// Name implements oracle.Oracle.
func (TaskOracle) Name() string { return OracleName }

// Run implements oracle.Oracle.
func (TaskOracle) Run(tc *oracle.TaskContext) (oracle.TaskReport, error) {
	var rep oracle.TaskReport
	gen := sqlancer.New(tc.Seed)
	if err := oracle.ApplySchema(tc.Engine, gen, tc.Tables, tc.Rows); err != nil {
		return rep, err
	}
	found := 0
	for i := 0; i < tc.Queries; i++ {
		if tc.MaxFindings > 0 && found >= tc.MaxFindings {
			break
		}
		if !tc.Alive(rep.Queries) {
			break
		}
		rep.Queries++
		table, pred := gen.PartitionableQuery()
		v, err := Check(tc.Engine, table, pred)
		var f oracle.Finding
		switch {
		case errors.Is(err, exec.ErrUnresolvedColumn):
			// Generator noise: the predicate names a column this table
			// lacks.
			rep.Skipped++
			continue
		case err != nil:
			f = oracle.Finding{
				Kind: oracle.KindCrash, Query: "TLP " + table + " / " + pred,
				Detail: err.Error(),
			}
		case v != nil:
			f = oracle.Finding{
				Kind: oracle.KindLogic, Query: v.Base + " WHERE " + pred,
				Detail: v.Detail,
			}
		default:
			continue
		}
		if tc.Emit(f) {
			found++
		}
	}
	return rep, nil
}
