// Package sql implements the SQL dialect shared by the simulated engines:
// a lexer, parser, and AST with printing for the subset needed by the
// paper's workloads (TPC-H adaptations, SQLancer-style generated queries,
// and the DDL/DML used by QPG database mutation).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind discriminates lexical token types.
type TokenKind uint8

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TKeyword
	TInt
	TFloat
	TString
	TSymbol // operators and punctuation
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TEOF {
		return "<eof>"
	}
	return t.Text
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "ON": true, "UNION": true, "INTERSECT": true,
	"EXCEPT": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"IS": true, "NULL": true, "BETWEEN": true, "LIKE": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"TRUE": true, "FALSE": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "UNIQUE": true, "PRIMARY": true, "KEY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "INT": true, "INTEGER": true,
	"FLOAT": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"BOOL": true, "BOOLEAN": true, "DECIMAL": true, "DATE": true,
	"EXPLAIN": true, "ANALYZE": true, "FORMAT": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			isFloat := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !isFloat {
					isFloat = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && i+1 < n {
					next := input[i+1]
					if next >= '0' && next <= '9' || next == '+' || next == '-' {
						isFloat = true
						i += 2
						continue
					}
				}
				break
			}
			kind := TInt
			if isFloat {
				kind = TFloat
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, Token{Kind: TSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
				toks = append(toks, Token{Kind: TSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, Token{Kind: TEOF, Pos: n})
	return toks, nil
}
