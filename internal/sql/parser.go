package sql

import (
	"fmt"
	"strconv"
	"strings"

	"uplan/internal/datum"
)

// Parse parses a single SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TSymbol, ";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input at %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(input string) (*Select, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", stmt)
	}
	return sel, nil
}

// MustParse parses input and panics on error; for tests and static queries.
func MustParse(input string) Statement {
	stmt, err := Parse(input)
	if err != nil {
		panic(fmt.Sprintf("MustParse(%q): %v", input, err))
	}
	return stmt
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().Kind == TEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && strings.EqualFold(t.Text, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool { return p.accept(TKeyword, kw) }

func (p *parser) expect(kind TokenKind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("sql: expected %q, found %q at offset %d",
			text, p.peek().Text, p.peek().Pos)
	}
	return nil
}

func (p *parser) expectKw(kw string) error { return p.expect(TKeyword, kw) }

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == TIdent {
		p.pos++
		return t.Text, nil
	}
	// Non-reserved usage of type keywords as identifiers (e.g. a column
	// named "date") is permitted.
	if t.Kind == TKeyword {
		switch t.Text {
		case "DATE", "KEY", "SET", "TEXT":
			p.pos++
			return strings.ToLower(t.Text), nil
		}
	}
	return "", fmt.Errorf("sql: expected identifier, found %q at offset %d", t.Text, t.Pos)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TKeyword {
		return nil, fmt.Errorf("sql: expected statement keyword, found %q", t.Text)
	}
	switch t.Text {
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		return p.parseExplain()
	}
	return nil, fmt.Errorf("sql: unsupported statement %q", t.Text)
}

func (p *parser) parseExplain() (Statement, error) {
	p.next() // EXPLAIN
	ex := &Explain{}
	if p.acceptKw("ANALYZE") {
		ex.Analyze = true
	}
	if p.accept(TSymbol, "(") {
		for {
			if p.acceptKw("ANALYZE") {
				ex.Analyze = true
				if p.accept(TKeyword, "TRUE") || p.accept(TKeyword, "FALSE") {
					// accept EXPLAIN (ANALYZE TRUE) style
				}
			} else if p.acceptKw("FORMAT") {
				f := p.next()
				ex.Format = strings.ToUpper(f.Text)
			} else {
				// skip unknown option token and optional value
				p.next()
				if p.peek().Kind != TSymbol {
					p.next()
				}
			}
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	ex.Stmt = stmt
	return ex, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, fmt.Errorf("sql: UNIQUE TABLE is not valid")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		ct := &CreateTable{Name: name}
		for {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.acceptKw("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		ci := &CreateIndex{Name: name, Table: table, Unique: unique}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Columns = append(ci.Columns, col)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return ci, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE")
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	t := p.next()
	if t.Kind != TKeyword {
		return ColumnDef{}, fmt.Errorf("sql: expected column type, found %q", t.Text)
	}
	var typ string
	switch t.Text {
	case "INT", "INTEGER":
		typ = "INT"
	case "FLOAT", "REAL", "DECIMAL":
		typ = "FLOAT"
		// Optional precision: DECIMAL(15,2)
		if p.accept(TSymbol, "(") {
			for !p.accept(TSymbol, ")") {
				p.next()
			}
		}
	case "TEXT", "VARCHAR", "DATE":
		typ = "TEXT"
		if p.accept(TSymbol, "(") {
			for !p.accept(TSymbol, ")") {
				p.next()
			}
		}
	case "BOOL", "BOOLEAN":
		typ = "BOOL"
	default:
		return ColumnDef{}, fmt.Errorf("sql: unsupported column type %q", t.Text)
	}
	col := ColumnDef{Name: name, Type: typ}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return ColumnDef{}, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return ColumnDef{}, err
			}
			col.NotNull = true
		default:
			return col, nil
		}
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(TSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(TSymbol, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Sets = append(upd.Sets, SetClause{Column: col, Value: val})
		if p.accept(TSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// parseSelect parses a full select including set operations, ORDER BY, and
// LIMIT. Set operations are left-associative with equal precedence.
func (p *parser) parseSelect() (*Select, error) {
	left, err := p.parseSelectCoreWrapped()
	if err != nil {
		return nil, err
	}
	for {
		var op CompoundOp
		switch {
		case p.acceptKw("UNION"):
			if p.acceptKw("ALL") {
				op = UnionAllOp
			} else {
				op = UnionOp
			}
		case p.acceptKw("INTERSECT"):
			op = IntersectOp
		case p.acceptKw("EXCEPT"):
			op = ExceptOp
		default:
			goto tail
		}
		{
			right, err := p.parseSelectCoreWrapped()
			if err != nil {
				return nil, err
			}
			left = &Select{Compound: &Compound{Op: op, Left: left, Right: right}}
		}
	}
tail:
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			left.OrderBy = append(left.OrderBy, item)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left.Offset = e
	}
	return left, nil
}

func (p *parser) parseSelectCoreWrapped() (*Select, error) {
	core, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	return &Select{Core: core}, nil
}

func (p *parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.acceptKw("DISTINCT") {
		core.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if p.accept(TSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if p.accept(TSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = h
	}
	return core, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.accept(TSymbol, "*") {
		return SelectItem{Expr: &Star{}}, nil
	}
	save := p.save()
	if p.peek().Kind == TIdent {
		name := p.next().Text
		if p.accept(TSymbol, ".") && p.accept(TSymbol, "*") {
			return SelectItem{Expr: &Star{Table: name}}, nil
		}
		p.restore(save)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFrom() (TableRef, error) {
	left, err := p.parseTableRefAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TSymbol, ","):
			right, err := p.parseTableRefAtom()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: JoinCross, Left: left, Right: right}
		case p.acceptKw("CROSS"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableRefAtom()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: JoinCross, Left: left, Right: right}
		case p.acceptKw("INNER"), p.acceptKw("JOIN"):
			// "INNER JOIN" or bare "JOIN"
			if strings.EqualFold(p.toks[p.pos-1].Text, "INNER") {
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
			}
			right, err := p.parseTableRefAtom()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: JoinInner, Left: left, Right: right, On: on}
		case p.acceptKw("LEFT"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableRefAtom()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: JoinLeft, Left: left, Right: right, On: on}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTableRefAtom() (TableRef, error) {
	if p.accept(TSymbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		p.acceptKw("AS")
		alias, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("sql: derived table requires an alias: %w", err)
		}
		return &SubqueryRef{Sub: sub, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &BaseTable{Name: name, Alias: name}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// ------------------------------------------------------------ expressions

// parseExpr parses with standard precedence:
// OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < additive < multiplicative
// < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TSymbol, "="):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpEq, L: left, R: r}
		case p.accept(TSymbol, "<>"), p.accept(TSymbol, "!="):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpNe, L: left, R: r}
		case p.accept(TSymbol, "<="):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpLe, L: left, R: r}
		case p.accept(TSymbol, ">="):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpGe, L: left, R: r}
		case p.accept(TSymbol, "<"):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpLt, L: left, R: r}
		case p.accept(TSymbol, ">"):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpGt, L: left, R: r}
		case p.acceptKw("IS"):
			neg := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &IsNull{X: left, Neg: neg}
		case p.acceptKw("IN"):
			e, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		case p.acceptKw("NOT"):
			switch {
			case p.acceptKw("IN"):
				e, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.acceptKw("BETWEEN"):
				e, err := p.parseBetweenTail(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.acceptKw("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &Like{X: left, Pattern: pat, Neg: true}
			default:
				return nil, fmt.Errorf("sql: expected IN/BETWEEN/LIKE after NOT")
			}
		case p.acceptKw("BETWEEN"):
			e, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		case p.acceptKw("LIKE"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Like{X: left, Pattern: pat}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(left Expr, neg bool) (Expr, error) {
	if err := p.expect(TSymbol, "("); err != nil {
		return nil, err
	}
	if p.peek().Kind == TKeyword && p.peek().Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return &InSubquery{X: left, Sub: sub, Neg: neg}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.accept(TSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(TSymbol, ")"); err != nil {
		return nil, err
	}
	return &InList{X: left, List: list, Neg: neg}, nil
}

func (p *parser) parseBetweenTail(left Expr, neg bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Between{X: left, Lo: lo, Hi: hi, Neg: neg}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TSymbol, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpAdd, L: left, R: r}
		case p.accept(TSymbol, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpSub, L: left, R: r}
		case p.accept(TSymbol, "||"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpCat, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpMul, L: left, R: r}
		case p.accept(TSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpDiv, L: left, R: r}
		case p.accept(TSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpMod, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.K {
			case datum.KInt:
				return &Literal{Val: datum.Int(-lit.Val.I)}, nil
			case datum.KFloat:
				return &Literal{Val: datum.Float(-lit.Val.F)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.accept(TSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TInt:
		p.next()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.Text)
			}
			return &Literal{Val: datum.Float(f)}, nil
		}
		return &Literal{Val: datum.Int(i)}, nil
	case TFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return &Literal{Val: datum.Float(f)}, nil
	case TString:
		p.next()
		return &Literal{Val: datum.Str(t.Text)}, nil
	case TKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: datum.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: datum.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: datum.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			if err := p.expect(TSymbol, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TSymbol, ")"); err != nil {
				return nil, err
			}
			return &Exists{Sub: sub}, nil
		case "NOT":
			p.next()
			x, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: "NOT", X: x}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q in expression", t.Text)
	case TSymbol:
		if t.Text == "(" {
			p.next()
			// Parenthesized subquery or expression.
			if p.peek().Kind == TKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expect(TSymbol, ")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sql: unexpected symbol %q in expression", t.Text)
	case TIdent:
		name := p.next().Text
		// Function call?
		if p.accept(TSymbol, "(") {
			return p.parseFuncCallTail(strings.ToUpper(name))
		}
		// Qualified column?
		if p.accept(TSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.Text)
}

func (p *parser) parseFuncCallTail(name string) (Expr, error) {
	fc := &FuncCall{Name: name}
	if p.accept(TSymbol, "*") {
		fc.Star = true
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(TSymbol, ")") {
		return fc, nil
	}
	if p.acceptKw("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.accept(TSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(TSymbol, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &Case{}
	if !(p.peek().Kind == TKeyword && p.peek().Text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN arm")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
