package sql

import (
	"strings"
	"testing"

	"uplan/internal/datum"
)

func parseOK(t *testing.T, in string) Statement {
	t.Helper()
	stmt, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, t1.b FROM t1 WHERE a <= 'x''y' -- comment\n AND b <> 1.5e3")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "t1", ".", "b", "FROM", "t1",
		"WHERE", "a", "<=", "x'y", "AND", "b", "<>", "1.5e3"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'oops"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex("SELECT @x"); err == nil {
		t.Error("illegal character must fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := parseOK(t, "CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 TEXT NOT NULL, c2 FLOAT, c3 BOOL)")
	ct := stmt.(*CreateTable)
	if ct.Name != "t0" || len(ct.Columns) != 4 {
		t.Fatalf("bad create table: %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].NotNull {
		t.Error("primary key flags wrong")
	}
	if ct.Columns[1].Type != "TEXT" || !ct.Columns[1].NotNull {
		t.Error("c1 flags wrong")
	}
	if ct.Columns[2].Type != "FLOAT" || ct.Columns[3].Type != "BOOL" {
		t.Error("type normalization wrong")
	}
}

func TestParseCreateTableTypeSynonyms(t *testing.T) {
	stmt := parseOK(t, "CREATE TABLE s (a INTEGER, b REAL, c VARCHAR(25), d DECIMAL(15,2), e DATE)")
	ct := stmt.(*CreateTable)
	types := []string{"INT", "FLOAT", "TEXT", "FLOAT", "TEXT"}
	for i, w := range types {
		if ct.Columns[i].Type != w {
			t.Errorf("col %d type = %q, want %q", i, ct.Columns[i].Type, w)
		}
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt := parseOK(t, "CREATE UNIQUE INDEX i0 ON t0 (c0, c1)")
	ci := stmt.(*CreateIndex)
	if !ci.Unique || ci.Table != "t0" || len(ci.Columns) != 2 {
		t.Fatalf("bad create index: %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := parseOK(t, "INSERT INTO t0 (c1, c0) VALUES (0, 1), (NULL, 'x')")
	ins := stmt.(*Insert)
	if ins.Table != "t0" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if lit := ins.Rows[1][0].(*Literal); !lit.Val.IsNull() {
		t.Error("NULL literal expected")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := parseOK(t, "UPDATE t0 SET c0 = c0 + 1, c1 = 'x' WHERE c0 > 5").(*Update)
	if len(upd.Sets) != 2 || upd.Where == nil {
		t.Fatalf("bad update: %+v", upd)
	}
	del := parseOK(t, "DELETE FROM t0 WHERE c0 IS NULL").(*Delete)
	if del.Table != "t0" || del.Where == nil {
		t.Fatalf("bad delete: %+v", del)
	}
}

func TestParseSelectBasic(t *testing.T) {
	sel := parseOK(t, "SELECT DISTINCT t1.c0 AS x, COUNT(*) FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 GROUP BY t1.c0 HAVING COUNT(*) > 1 ORDER BY x DESC LIMIT 10 OFFSET 2").(*Select)
	core := sel.Core
	if !core.Distinct || len(core.Items) != 2 {
		t.Fatalf("items: %+v", core.Items)
	}
	if core.Items[0].Alias != "x" {
		t.Error("alias lost")
	}
	join, ok := core.From.(*JoinRef)
	if !ok || join.Type != JoinInner || join.On == nil {
		t.Fatalf("join parse: %+v", core.From)
	}
	if core.Where == nil || len(core.GroupBy) != 1 || core.Having == nil {
		t.Error("clauses missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("order by wrong")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	sel := parseOK(t, "SELECT a.c0 FROM t0 a").(*Select)
	bt := sel.Core.From.(*BaseTable)
	if bt.Name != "t0" || bt.Alias != "a" {
		t.Fatalf("alias: %+v", bt)
	}
}

func TestParseCompound(t *testing.T) {
	sel := parseOK(t, "SELECT c0 FROM t0 UNION SELECT c0 FROM t1 UNION ALL SELECT c0 FROM t2 ORDER BY c0").(*Select)
	if sel.Compound == nil || sel.Compound.Op != UnionAllOp {
		t.Fatalf("outer compound: %+v", sel.Compound)
	}
	inner := sel.Compound.Left
	if inner.Compound == nil || inner.Compound.Op != UnionOp {
		t.Fatalf("inner compound: %+v", inner)
	}
	if len(sel.OrderBy) != 1 {
		t.Error("order by must attach to the compound")
	}
}

func TestParseSetOps(t *testing.T) {
	for _, op := range []string{"INTERSECT", "EXCEPT"} {
		sel := parseOK(t, "SELECT c0 FROM t0 "+op+" SELECT c0 FROM t1").(*Select)
		if sel.Compound == nil || string(sel.Compound.Op) != op {
			t.Errorf("%s parse failed: %+v", op, sel.Compound)
		}
	}
}

func TestParseSubqueries(t *testing.T) {
	sel := parseOK(t, "SELECT * FROM t0 WHERE c0 IN (SELECT c0 FROM t1) AND EXISTS (SELECT 1 FROM t2) AND c1 = (SELECT MAX(c1) FROM t3)").(*Select)
	where := sel.Core.Where
	found := map[string]bool{}
	WalkExpr(where, func(e Expr) bool {
		switch e.(type) {
		case *InSubquery:
			found["in"] = true
		case *Exists:
			found["exists"] = true
		case *ScalarSubquery:
			found["scalar"] = true
		}
		return true
	})
	if !found["in"] || !found["exists"] || !found["scalar"] {
		t.Errorf("subqueries found: %v", found)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := parseOK(t, "SELECT x.a FROM (SELECT c0 AS a FROM t0) AS x").(*Select)
	sub, ok := sel.Core.From.(*SubqueryRef)
	if !ok || sub.Alias != "x" {
		t.Fatalf("derived table: %+v", sel.Core.From)
	}
}

func TestParseExprForms(t *testing.T) {
	sel := parseOK(t, `SELECT CASE WHEN c0 > 0 THEN 'p' ELSE 'n' END,
		c0 BETWEEN 1 AND 10, c1 LIKE 'a%', c2 NOT IN (1, 2),
		c3 IS NOT NULL, GREATEST(0.1, 0.2), -c0, NOT c4
		FROM t0`).(*Select)
	if len(sel.Core.Items) != 8 {
		t.Fatalf("items = %d", len(sel.Core.Items))
	}
	if _, ok := sel.Core.Items[0].Expr.(*Case); !ok {
		t.Error("CASE parse failed")
	}
	if b, ok := sel.Core.Items[1].Expr.(*Between); !ok || b.Neg {
		t.Error("BETWEEN parse failed")
	}
	if l, ok := sel.Core.Items[2].Expr.(*Like); !ok || l.Neg {
		t.Error("LIKE parse failed")
	}
	if in, ok := sel.Core.Items[3].Expr.(*InList); !ok || !in.Neg {
		t.Error("NOT IN parse failed")
	}
	if n, ok := sel.Core.Items[4].Expr.(*IsNull); !ok || !n.Neg {
		t.Error("IS NOT NULL parse failed")
	}
	if f, ok := sel.Core.Items[5].Expr.(*FuncCall); !ok || f.Name != "GREATEST" {
		t.Error("function call parse failed")
	}
	if lit, ok := sel.Core.Items[6].Expr.(*Literal); !ok || lit.Val.I != 0 {
		// -c0 is a Unary, not a literal; both acceptable shapes
		if _, ok := sel.Core.Items[6].Expr.(*Unary); !ok {
			t.Error("negation parse failed")
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseOK(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	or, ok := sel.Core.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("OR should be top: %v", sel.Core.Where.SQL())
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("AND should bind tighter: %v", or.R.SQL())
	}
	sel2 := parseOK(t, "SELECT 1 + 2 * 3").(*Select)
	add := sel2.Core.Items[0].Expr.(*Binary)
	if add.Op != OpAdd {
		t.Fatal("additive should be top")
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != OpMul {
		t.Fatal("* should bind tighter than +")
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	sel := parseOK(t, "SELECT -5, -2.5").(*Select)
	if lit := sel.Core.Items[0].Expr.(*Literal); lit.Val.I != -5 {
		t.Errorf("folded -5: %v", lit.Val)
	}
	if lit := sel.Core.Items[1].Expr.(*Literal); lit.Val.F != -2.5 {
		t.Errorf("folded -2.5: %v", lit.Val)
	}
}

func TestParseExplain(t *testing.T) {
	ex := parseOK(t, "EXPLAIN SELECT * FROM t0").(*Explain)
	if ex.Analyze || ex.Format != "" {
		t.Errorf("plain explain flags: %+v", ex)
	}
	ex = parseOK(t, "EXPLAIN ANALYZE SELECT * FROM t0").(*Explain)
	if !ex.Analyze {
		t.Error("ANALYZE lost")
	}
	ex = parseOK(t, "EXPLAIN (FORMAT JSON) SELECT * FROM t0").(*Explain)
	if ex.Format != "JSON" {
		t.Errorf("format = %q", ex.Format)
	}
	ex = parseOK(t, "EXPLAIN (SUMMARY TRUE) SELECT 1").(*Explain)
	if ex.Stmt == nil {
		t.Error("unknown options should be skipped")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"CREATE TABLE t (c NOTATYPE)",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT * FROM (SELECT 1)", // derived table needs alias
		"SELECT CASE END",
		"SELECT * FROM t extra_token ,",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT DISTINCT t1.c0 AS x FROM t0 INNER JOIN t1 ON (t0.c0 = t1.c0) WHERE (t0.c0 < 100) GROUP BY t1.c0 HAVING (COUNT(*) > 1) ORDER BY x DESC LIMIT 10",
		"SELECT c0 FROM t0 UNION SELECT c0 FROM t2",
		"INSERT INTO t0 (c1, c0) VALUES (0, 1)",
		"UPDATE t0 SET c0 = 1 WHERE (c1 IS NULL)",
		"DELETE FROM t0 WHERE (c0 IN (1, 2))",
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT)",
		"CREATE UNIQUE INDEX i ON t (a)",
		"SELECT * FROM t0 LEFT JOIN t1 ON (t0.a = t1.a)",
		"SELECT (SELECT MAX(c0) FROM t1) FROM t0",
	}
	for _, in := range inputs {
		stmt := parseOK(t, in)
		out := stmt.SQL()
		stmt2 := parseOK(t, out)
		if stmt2.SQL() != out {
			t.Errorf("SQL round trip unstable:\n1st: %s\n2nd: %s", out, stmt2.SQL())
		}
	}
}

func TestContainsHelpers(t *testing.T) {
	sel := parseOK(t, "SELECT SUM(c0) FROM t0 WHERE c1 IN (SELECT c1 FROM t1)").(*Select)
	if !ContainsAggregate(sel.Core.Items[0].Expr) {
		t.Error("SUM should be detected as aggregate")
	}
	if !ContainsSubquery(sel.Core.Where) {
		t.Error("IN-subquery should be detected")
	}
	if ContainsAggregate(sel.Core.Where) {
		t.Error("no aggregate in where")
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	sel := parseOK(t, "SELECT 'it''s'").(*Select)
	lit := sel.Core.Items[0].Expr.(*Literal)
	if lit.Val.S != "it's" {
		t.Errorf("string literal = %q", lit.Val.S)
	}
	if !strings.Contains(lit.SQL(), "''") {
		t.Errorf("re-rendered literal must escape: %q", lit.SQL())
	}
}

func TestParseGreatestCall(t *testing.T) {
	// The expression from the paper's Listing 3.
	sel := parseOK(t, "SELECT * FROM t0 WHERE t0.c1 IN (GREATEST(0.1, 0.2))").(*Select)
	in := sel.Core.Where.(*InList)
	fc := in.List[0].(*FuncCall)
	if fc.Name != "GREATEST" || len(fc.Args) != 2 {
		t.Fatalf("GREATEST parse: %+v", fc)
	}
	if lit := fc.Args[0].(*Literal); lit.Val.K != datum.KFloat {
		t.Error("0.1 should parse as FLOAT")
	}
}
