package sql

import (
	"strings"

	"uplan/internal/datum"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	// SQL renders the statement back to SQL text.
	SQL() string
}

// Expr is any SQL expression.
type Expr interface {
	exprNode()
	// SQL renders the expression back to SQL text.
	SQL() string
}

// ---------------------------------------------------------------- expressions

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val datum.D
}

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators.
const (
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
	OpMod BinaryOp = "%"
	OpEq  BinaryOp = "="
	OpNe  BinaryOp = "<>"
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAnd BinaryOp = "AND"
	OpOr  BinaryOp = "OR"
	OpCat BinaryOp = "||"
)

// Binary applies a binary operator to two operands.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary applies NOT or arithmetic negation.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// InList tests X [NOT] IN (e1, e2, …).
type InList struct {
	X    Expr
	List []Expr
	Neg  bool
}

// InSubquery tests X [NOT] IN (SELECT …).
type InSubquery struct {
	X   Expr
	Sub *Select
	Neg bool
}

// Exists tests [NOT] EXISTS (SELECT …).
type Exists struct {
	Sub *Select
	Neg bool
}

// Between tests X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Neg       bool
}

// Like tests X [NOT] LIKE pattern (with % and _ wildcards).
type Like struct {
	X, Pattern Expr
	Neg        bool
}

// When is one CASE arm.
type When struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN … THEN … [ELSE …] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr // nil if absent
}

// FuncCall is a function application; aggregates are recognized by name.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Distinct bool
	Star     bool // COUNT(*)
}

// ScalarSubquery is a subquery used as a scalar value.
type ScalarSubquery struct {
	Sub *Select
}

// Star is "*" or "t.*" in a select list.
type Star struct {
	Table string // optional qualifier
}

func (*ColumnRef) exprNode()      {}
func (*Literal) exprNode()        {}
func (*Binary) exprNode()         {}
func (*Unary) exprNode()          {}
func (*IsNull) exprNode()         {}
func (*InList) exprNode()         {}
func (*InSubquery) exprNode()     {}
func (*Exists) exprNode()         {}
func (*Between) exprNode()        {}
func (*Like) exprNode()           {}
func (*Case) exprNode()           {}
func (*FuncCall) exprNode()       {}
func (*ScalarSubquery) exprNode() {}
func (*Star) exprNode()           {}

// AggregateFuncs lists the aggregate function names the engine understands.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return AggregateFuncs[f.Name] }

// ----------------------------------------------------------------- statements

// ColumnDef defines one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // INT, FLOAT, TEXT, BOOL (normalized)
	PrimaryKey bool
	NotNull    bool
}

// CreateTable is CREATE TABLE name (cols…).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols…).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Insert is INSERT INTO table [(cols…)] VALUES (…), (…).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Update is UPDATE table SET col=expr, … [WHERE …].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col=expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE …].
type Delete struct {
	Table string
	Where Expr
}

// SelectItem is one output expression with optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// JoinType enumerates join kinds.
type JoinType string

// Join kinds.
const (
	JoinInner JoinType = "INNER"
	JoinLeft  JoinType = "LEFT"
	JoinCross JoinType = "CROSS"
)

// TableRef is a FROM-clause item.
type TableRef interface {
	tableRefNode()
	// SQL renders the table reference.
	SQL() string
}

// BaseTable references a stored table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryRef references a derived table (SELECT …) AS alias.
type SubqueryRef struct {
	Sub   *Select
	Alias string
}

// JoinRef joins two table references.
type JoinRef struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr // nil for CROSS
}

func (*BaseTable) tableRefNode()   {}
func (*SubqueryRef) tableRefNode() {}
func (*JoinRef) tableRefNode()     {}

// SelectCore is one SELECT … FROM … block without set operations or
// ordering.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil for FROM-less SELECT
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

// CompoundOp enumerates set operations.
type CompoundOp string

// Set operations.
const (
	UnionOp     CompoundOp = "UNION"
	UnionAllOp  CompoundOp = "UNION ALL"
	IntersectOp CompoundOp = "INTERSECT"
	ExceptOp    CompoundOp = "EXCEPT"
)

// Compound combines two selects with a set operation.
type Compound struct {
	Op    CompoundOp
	Left  *Select
	Right *Select
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a full query: either a core or a compound, plus ordering and
// limits.
type Select struct {
	Core     *SelectCore // exactly one of Core/Compound is set
	Compound *Compound
	OrderBy  []OrderItem
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent
}

// Explain wraps a statement for plan inspection.
type Explain struct {
	Stmt    Statement
	Analyze bool
	Format  string // "", "TEXT", "JSON", …
}

func (*CreateTable) stmtNode() {}
func (*CreateIndex) stmtNode() {}
func (*Insert) stmtNode()      {}
func (*Update) stmtNode()      {}
func (*Delete) stmtNode()      {}
func (*Select) stmtNode()      {}
func (*Explain) stmtNode()     {}

// ------------------------------------------------------------------- printing

func (e *ColumnRef) SQL() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *Literal) SQL() string { return e.Val.String() }

func (e *Binary) SQL() string {
	return "(" + e.L.SQL() + " " + string(e.Op) + " " + e.R.SQL() + ")"
}

func (e *Unary) SQL() string {
	if e.Op == "NOT" {
		return "(NOT " + e.X.SQL() + ")"
	}
	return "(" + e.Op + e.X.SQL() + ")"
}

func (e *IsNull) SQL() string {
	if e.Neg {
		return "(" + e.X.SQL() + " IS NOT NULL)"
	}
	return "(" + e.X.SQL() + " IS NULL)"
}

func (e *InList) SQL() string {
	var parts []string
	for _, x := range e.List {
		parts = append(parts, x.SQL())
	}
	op := " IN ("
	if e.Neg {
		op = " NOT IN ("
	}
	return "(" + e.X.SQL() + op + strings.Join(parts, ", ") + "))"
}

func (e *InSubquery) SQL() string {
	op := " IN ("
	if e.Neg {
		op = " NOT IN ("
	}
	return "(" + e.X.SQL() + op + e.Sub.SQL() + "))"
}

func (e *Exists) SQL() string {
	if e.Neg {
		return "(NOT EXISTS (" + e.Sub.SQL() + "))"
	}
	return "(EXISTS (" + e.Sub.SQL() + "))"
}

func (e *Between) SQL() string {
	op := " BETWEEN "
	if e.Neg {
		op = " NOT BETWEEN "
	}
	return "(" + e.X.SQL() + op + e.Lo.SQL() + " AND " + e.Hi.SQL() + ")"
}

func (e *Like) SQL() string {
	op := " LIKE "
	if e.Neg {
		op = " NOT LIKE "
	}
	return "(" + e.X.SQL() + op + e.Pattern.SQL() + ")"
}

func (e *Case) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.SQL())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.SQL())
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

func (e *ScalarSubquery) SQL() string { return "(" + e.Sub.SQL() + ")" }

func (e *Star) SQL() string {
	if e.Table != "" {
		return e.Table + ".*"
	}
	return "*"
}

func (t *BaseTable) SQL() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

func (t *SubqueryRef) SQL() string {
	return "(" + t.Sub.SQL() + ") AS " + t.Alias
}

func (t *JoinRef) SQL() string {
	switch t.Type {
	case JoinCross:
		return t.Left.SQL() + " CROSS JOIN " + t.Right.SQL()
	case JoinLeft:
		return t.Left.SQL() + " LEFT JOIN " + t.Right.SQL() + " ON " + t.On.SQL()
	default:
		return t.Left.SQL() + " INNER JOIN " + t.Right.SQL() + " ON " + t.On.SQL()
	}
}

func (s *SelectCore) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	var items []string
	for _, it := range s.Items {
		t := it.Expr.SQL()
		if it.Alias != "" {
			t += " AS " + it.Alias
		}
		items = append(items, t)
	}
	b.WriteString(strings.Join(items, ", "))
	if s.From != nil {
		b.WriteString(" FROM " + s.From.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		var keys []string
		for _, g := range s.GroupBy {
			keys = append(keys, g.SQL())
		}
		b.WriteString(" GROUP BY " + strings.Join(keys, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	return b.String()
}

func (s *Select) SQL() string {
	var b strings.Builder
	if s.Core != nil {
		b.WriteString(s.Core.SQL())
	} else {
		b.WriteString(s.Compound.Left.SQL())
		b.WriteString(" " + string(s.Compound.Op) + " ")
		b.WriteString(s.Compound.Right.SQL())
	}
	if len(s.OrderBy) > 0 {
		var keys []string
		for _, o := range s.OrderBy {
			t := o.Expr.SQL()
			if o.Desc {
				t += " DESC"
			}
			keys = append(keys, t)
		}
		b.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.SQL())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.SQL())
	}
	return b.String()
}

func (s *CreateTable) SQL() string {
	var cols []string
	for _, c := range s.Columns {
		t := c.Name + " " + c.Type
		if c.PrimaryKey {
			t += " PRIMARY KEY"
		} else if c.NotNull {
			t += " NOT NULL"
		}
		cols = append(cols, t)
	}
	return "CREATE TABLE " + s.Name + " (" + strings.Join(cols, ", ") + ")"
}

func (s *CreateIndex) SQL() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return "CREATE " + u + "INDEX " + s.Name + " ON " + s.Table +
		" (" + strings.Join(s.Columns, ", ") + ")"
}

func (s *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	var rows []string
	for _, r := range s.Rows {
		var vals []string
		for _, v := range r {
			vals = append(vals, v.SQL())
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	b.WriteString(strings.Join(rows, ", "))
	return b.String()
}

func (s *Update) SQL() string {
	var sets []string
	for _, sc := range s.Sets {
		sets = append(sets, sc.Column+" = "+sc.Value.SQL())
	}
	out := "UPDATE " + s.Table + " SET " + strings.Join(sets, ", ")
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}

func (s *Delete) SQL() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}

func (s *Explain) SQL() string {
	out := "EXPLAIN "
	if s.Analyze {
		out += "ANALYZE "
	}
	if s.Format != "" {
		out += "(FORMAT " + s.Format + ") "
	}
	return out + s.Stmt.SQL()
}

// WalkExpr visits e and all sub-expressions in pre-order; fn returning
// false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case *Binary:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case *Unary:
		WalkExpr(t.X, fn)
	case *IsNull:
		WalkExpr(t.X, fn)
	case *InList:
		WalkExpr(t.X, fn)
		for _, x := range t.List {
			WalkExpr(x, fn)
		}
	case *InSubquery:
		WalkExpr(t.X, fn)
	case *Between:
		WalkExpr(t.X, fn)
		WalkExpr(t.Lo, fn)
		WalkExpr(t.Hi, fn)
	case *Like:
		WalkExpr(t.X, fn)
		WalkExpr(t.Pattern, fn)
	case *Case:
		WalkExpr(t.Operand, fn)
		for _, w := range t.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(t.Else, fn)
	case *FuncCall:
		for _, a := range t.Args {
			WalkExpr(a, fn)
		}
	}
}

// ContainsAggregate reports whether the expression contains an aggregate
// function call.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}

// ContainsSubquery reports whether the expression contains any subquery.
func ContainsSubquery(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ScalarSubquery, *InSubquery, *Exists:
			found = true
			return false
		}
		return true
	})
	return found
}
