// Package cert implements Cardinality Estimation Restriction Testing (Ba &
// Rigger, ICSE 2024) in a DBMS-agnostic way over the unified query plan
// representation — the second half of the paper's application A.1. CERT's
// oracle: a query that is strictly more restrictive than another must not
// have a larger estimated cardinality. The estimate is read from the
// unified plan (Cardinality category), so one implementation serves every
// engine with a converter.
package cert

import (
	"errors"
	"fmt"

	"uplan/internal/dbms"
	"uplan/internal/oracle"
	"uplan/internal/sqlancer"
)

// ErrUnplannable marks pairs the engine could not plan at all (parse or
// planning failure on the generated query). These are skip-worthy: CERT
// only reasons about successfully planned queries, and a generator
// routinely produces statements a dialect rejects.
var ErrUnplannable = errors.New("cert: query not plannable")

// ErrNoEstimate flags a plan that converted cleanly but carries no root
// cardinality estimate. Unlike an unplannable query this IS a signal — the
// engine planned the query yet its serialized plan exposes no estimate the
// oracle (or a user) can read — so Run reports it instead of skipping it.
var ErrNoEstimate = errors.New("cert: no cardinality estimate in plan")

// Violation is one CERT finding: the restricted query got a larger
// estimate than its base query.
type Violation struct {
	Engine        string
	Base          string
	Restricted    string
	BaseEst       float64
	RestrictedEst float64
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] est(%q)=%.1f < est(%q)=%.1f — restriction increased the estimate",
		v.Engine, v.Base, v.BaseEst, v.Restricted, v.RestrictedEst)
}

// Tolerance is the relative slack CERT allows before flagging (estimates
// are noisy; the paper filters by expert triage).
const Tolerance = 1.01

// Checker runs CERT against one engine.
type Checker struct {
	Engine *dbms.Engine
	// dec gives Estimate the allocation-lean arena-backed decode path:
	// the plan is read for one property and discarded, so it lives in a
	// checker-owned arena that is reset before the next decode.
	dec *oracle.Decoder
	// Checked counts performed estimate comparisons.
	Checked int
	// Skipped counts pairs the engine could not plan (ErrUnplannable).
	Skipped int
}

// New creates a CERT checker for the engine. The decoder's converter
// comes from the shared per-dialect cache (one registry per process),
// not a per-checker registry build.
func New(e *dbms.Engine) (*Checker, error) {
	dec, err := oracle.NewDecoder(e.Info.Name)
	if err != nil {
		return nil, err
	}
	return &Checker{Engine: e, dec: dec}, nil
}

// SetDecoder replaces the checker's plan decoder; the orchestrator uses
// it to share the task-owned decoder it already built.
func (c *Checker) SetDecoder(dec *oracle.Decoder) {
	if dec != nil {
		c.dec = dec
	}
}

// Estimate returns the optimizer's root cardinality estimate for the
// query, read from the unified plan. A query the engine cannot plan
// returns an error matching ErrUnplannable; a plan without a readable
// estimate returns one matching ErrNoEstimate.
func (c *Checker) Estimate(query string) (float64, error) {
	serialized, err := c.Engine.Explain(query, c.Engine.DefaultFormat())
	if err != nil {
		return 0, fmt.Errorf("%w: %q: %v", ErrUnplannable, query, err)
	}
	plan, err := c.dec.Decode(serialized)
	if err != nil {
		return 0, fmt.Errorf("cert: %s plan for %q did not convert: %w",
			c.Engine.Info.Name, query, err)
	}
	est, ok := plan.RootCardinality()
	if !ok {
		return 0, fmt.Errorf("%w (%s, %q)", ErrNoEstimate, c.Engine.Info.Name, query)
	}
	return est, nil
}

// CheckPair compares the estimates of a base query and a more restrictive
// variant. It returns a Violation when monotonicity is broken.
func (c *Checker) CheckPair(base, restricted string) (*Violation, error) {
	baseEst, err := c.Estimate(base)
	if err != nil {
		return nil, err
	}
	restEst, err := c.Estimate(restricted)
	if err != nil {
		return nil, err
	}
	c.Checked++
	if restEst > baseEst*Tolerance {
		return &Violation{
			Engine:        c.Engine.Info.Name,
			Base:          base,
			Restricted:    restricted,
			BaseEst:       baseEst,
			RestrictedEst: restEst,
		}, nil
	}
	return nil, nil
}

// Run generates n random base/restricted pairs and returns all violations.
// Pairs the engine cannot plan are skipped (and counted in Skipped) —
// CERT only reasons about successfully planned queries. Every other
// CheckPair failure (a plan that would not convert, a plan with no
// readable estimate) is reportable: Run finishes the budget, then returns
// the collected violations together with the joined errors.
func (c *Checker) Run(gen *sqlancer.Generator, n int) ([]Violation, error) {
	var out []Violation
	var errs []error
	for i := 0; i < n; i++ {
		base, restricted := gen.RestrictableQuery()
		v, err := c.CheckPair(base, restricted)
		switch {
		case errors.Is(err, ErrUnplannable):
			c.Skipped++
		case err != nil:
			errs = append(errs, err)
		case v != nil:
			out = append(out, *v)
		}
	}
	return out, errors.Join(errs...)
}
