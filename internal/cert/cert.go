// Package cert implements Cardinality Estimation Restriction Testing (Ba &
// Rigger, ICSE 2024) in a DBMS-agnostic way over the unified query plan
// representation — the second half of the paper's application A.1. CERT's
// oracle: a query that is strictly more restrictive than another must not
// have a larger estimated cardinality. The estimate is read from the
// unified plan (Cardinality category), so one implementation serves every
// engine with a converter.
package cert

import (
	"fmt"

	"uplan/internal/convert"
	"uplan/internal/dbms"
	"uplan/internal/sqlancer"
)

// Violation is one CERT finding: the restricted query got a larger
// estimate than its base query.
type Violation struct {
	Engine        string
	Base          string
	Restricted    string
	BaseEst       float64
	RestrictedEst float64
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] est(%q)=%.1f < est(%q)=%.1f — restriction increased the estimate",
		v.Engine, v.Base, v.BaseEst, v.Restricted, v.RestrictedEst)
}

// Tolerance is the relative slack CERT allows before flagging (estimates
// are noisy; the paper filters by expert triage).
const Tolerance = 1.01

// Checker runs CERT against one engine.
type Checker struct {
	Engine    *dbms.Engine
	converter convert.Converter
	// Checked counts performed estimate comparisons.
	Checked int
}

// New creates a CERT checker for the engine.
func New(e *dbms.Engine) (*Checker, error) {
	conv, err := convert.For(e.Info.Name, nil)
	if err != nil {
		return nil, err
	}
	return &Checker{Engine: e, converter: conv}, nil
}

// Estimate returns the optimizer's root cardinality estimate for the
// query, read from the unified plan.
func (c *Checker) Estimate(query string) (float64, error) {
	serialized, err := c.Engine.Explain(query, c.Engine.DefaultFormat())
	if err != nil {
		return 0, err
	}
	plan, err := c.converter.Convert(serialized)
	if err != nil {
		return 0, err
	}
	est, ok := plan.RootCardinality()
	if !ok {
		return 0, fmt.Errorf("cert: no cardinality estimate in %s plan", c.Engine.Info.Name)
	}
	return est, nil
}

// CheckPair compares the estimates of a base query and a more restrictive
// variant. It returns a Violation when monotonicity is broken.
func (c *Checker) CheckPair(base, restricted string) (*Violation, error) {
	baseEst, err := c.Estimate(base)
	if err != nil {
		return nil, err
	}
	restEst, err := c.Estimate(restricted)
	if err != nil {
		return nil, err
	}
	c.Checked++
	if restEst > baseEst*Tolerance {
		return &Violation{
			Engine:        c.Engine.Info.Name,
			Base:          base,
			Restricted:    restricted,
			BaseEst:       baseEst,
			RestrictedEst: restEst,
		}, nil
	}
	return nil, nil
}

// Run generates n random base/restricted pairs and returns all violations.
func (c *Checker) Run(gen *sqlancer.Generator, n int) ([]Violation, error) {
	var out []Violation
	for i := 0; i < n; i++ {
		base, restricted := gen.RestrictableQuery()
		v, err := c.CheckPair(base, restricted)
		if err != nil {
			// Skip pairs the engine cannot plan; CERT only reasons about
			// successfully planned queries.
			continue
		}
		if v != nil {
			out = append(out, *v)
		}
	}
	return out, nil
}
