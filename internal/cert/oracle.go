package cert

import (
	"errors"

	"uplan/internal/oracle"
	"uplan/internal/sqlancer"
)

// OracleName is CERT's registry key.
const OracleName = "cert"

func init() { oracle.Register(TaskOracle{}, 1) }

// TaskOracle is CERT's oracle.Oracle implementation: random
// base/restricted pairs whose estimates must shrink. Unplannable pairs
// are skipped; a readable-estimate failure is itself a finding (the
// engine planned the query but its plan exposes no estimate, or the
// plan did not convert).
type TaskOracle struct{}

// Name implements oracle.Oracle.
func (TaskOracle) Name() string { return OracleName }

// Run implements oracle.Oracle.
func (TaskOracle) Run(tc *oracle.TaskContext) (oracle.TaskReport, error) {
	var rep oracle.TaskReport
	gen := sqlancer.New(tc.Seed)
	if err := oracle.ApplySchema(tc.Engine, gen, tc.Tables, tc.Rows); err != nil {
		return rep, err
	}
	checker, err := New(tc.Engine)
	if err != nil {
		return rep, err
	}
	checker.SetDecoder(tc.Decoder)
	found := 0
	for i := 0; i < tc.Queries; i++ {
		if tc.MaxFindings > 0 && found >= tc.MaxFindings {
			break
		}
		if !tc.Alive(rep.Queries) {
			break
		}
		rep.Queries++
		base, restricted := gen.RestrictableQuery()
		v, err := checker.CheckPair(base, restricted)
		var f oracle.Finding
		switch {
		case errors.Is(err, ErrUnplannable):
			rep.Skipped++
			continue
		case errors.Is(err, ErrNoEstimate):
			f = oracle.Finding{
				Kind: oracle.KindEstimate, Query: base,
				Detail: "no cardinality estimate in plan",
			}
		case err != nil:
			f = oracle.Finding{Kind: oracle.KindPlan, Query: base, Detail: err.Error()}
		case v != nil:
			f = oracle.Finding{Kind: oracle.KindEstimate, Query: v.Restricted, Detail: v.String()}
		default:
			continue
		}
		added := tc.Emit(f)
		if added {
			found++
		}
		if !added && errors.Is(err, ErrNoEstimate) {
			// A plan format that exposes no estimate for one query exposes
			// none for any (the finding is already recorded); spending the
			// rest of the budget would only re-derive it at two
			// EXPLAIN-plus-convert round trips per pair.
			break
		}
	}
	rep.Checks = checker.Checked
	return rep, nil
}
