package cert

import (
	"errors"
	"testing"

	"uplan/internal/dbms"
	"uplan/internal/sqlancer"
)

func seeded(t *testing.T, name string) *dbms.Engine {
	t.Helper()
	e := dbms.MustNew(name)
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
		"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c'), (4, 40, 'd')",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateReadsUnifiedPlan(t *testing.T) {
	for _, name := range []string{"postgresql", "mysql", "tidb"} {
		c, err := New(seeded(t, name))
		if err != nil {
			t.Fatal(err)
		}
		est, err := c.Estimate("SELECT * FROM t0")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if est < 3 || est > 5 {
			t.Errorf("%s: base estimate = %v, want ≈4", name, est)
		}
	}
}

func TestMonotonicityHoldsOnCorrectEngine(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CheckPair(
		"SELECT * FROM t0 WHERE c1 > 15",
		"SELECT * FROM t0 WHERE c1 > 15 AND c2 = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("correct engine flagged: %v", v)
	}
}

func TestViolationDetected(t *testing.T) {
	e := seeded(t, "tidb")
	e.Opts.Quirks.PredicateInflatesEstimate = 1000
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CheckPair(
		"SELECT * FROM t0 WHERE c1 > 15",
		"SELECT * FROM t0 WHERE c1 > 15 AND c0 = 2")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("inflated estimate not flagged")
	}
	if v.RestrictedEst <= v.BaseEst {
		t.Errorf("violation fields: %+v", v)
	}
	if v.String() == "" {
		t.Error("violation must render")
	}
}

func TestRunSkipsUnplannable(t *testing.T) {
	e := seeded(t, "postgresql")
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	gen := sqlancer.New(3)
	gen.SchemaSQL(1, 0) // generator schema ≠ engine schema: pairs skipped
	if _, err := c.Run(gen, 10); err != nil {
		t.Fatalf("Run must tolerate unplannable pairs: %v", err)
	}
}

// TestRunReportsMissingEstimates is the regression test for Run's
// swallowed errors: SQLite's plans carry no cardinality estimate, which
// is a reportable signal — Run used to `continue` past it and could never
// return a non-nil error despite its signature.
func TestRunReportsMissingEstimates(t *testing.T) {
	e := dbms.MustNew("sqlite")
	gen := sqlancer.New(11)
	for _, s := range gen.SchemaSQL(2, 8) {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(gen, 5)
	if err == nil {
		t.Fatal("missing estimates must surface as a Run error")
	}
	if !errors.Is(err, ErrNoEstimate) {
		t.Errorf("error %q must match ErrNoEstimate", err)
	}
}

// TestEstimateClassifiesFailures pins the two error classes Estimate
// distinguishes: unplannable queries (skip-worthy) versus plans without a
// readable estimate (reportable).
func TestEstimateClassifiesFailures(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Estimate("SELECT * FROM no_such_table")
	if !errors.Is(err, ErrUnplannable) {
		t.Errorf("unknown table: %q must match ErrUnplannable", err)
	}
	if errors.Is(err, ErrNoEstimate) {
		t.Errorf("unknown table must not match ErrNoEstimate: %q", err)
	}

	s, err := New(seeded(t, "sqlite"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Estimate("SELECT * FROM t0")
	if !errors.Is(err, ErrNoEstimate) {
		t.Errorf("estimate-free plan: %q must match ErrNoEstimate", err)
	}
	if errors.Is(err, ErrUnplannable) {
		t.Errorf("estimate-free plan is plannable: %q", err)
	}
}

// TestRunCountsSkips: unplannable pairs still skip silently (CERT only
// reasons about planned queries) but are now counted.
func TestRunCountsSkips(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	gen := sqlancer.New(3)
	// Three generator tables while the engine only has t0: pairs against
	// t1/t2 cannot plan and must be skipped (and counted), pairs against
	// t0 plan normally.
	gen.SchemaSQL(3, 0)
	vs, err := c.Run(gen, 12)
	if err != nil {
		t.Fatalf("unplannable pairs are not reportable: %v", err)
	}
	if len(vs) != 0 {
		t.Errorf("pristine engine flagged: %v", vs)
	}
	if c.Skipped == 0 {
		t.Error("no unplannable pair was counted as skipped")
	}
	if c.Checked+c.Skipped != 12 {
		t.Errorf("checked %d + skipped %d != 12 pairs", c.Checked, c.Skipped)
	}
}

// TestCheckerSharesCachedConverter is the regression test for per-checker
// registry rebuilds: every checker for a dialect must reuse the shared
// cached converter instead of building a fresh registry.
func TestCheckerSharesCachedConverter(t *testing.T) {
	a, err := New(seeded(t, "mysql"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(seeded(t, "mysql"))
	if err != nil {
		t.Fatal(err)
	}
	if a.dec.Converter() != b.dec.Converter() {
		t.Error("checkers built separate converters — the registry is being rebuilt per checker")
	}
}
