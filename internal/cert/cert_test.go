package cert

import (
	"testing"

	"uplan/internal/dbms"
	"uplan/internal/sqlancer"
)

func seeded(t *testing.T, name string) *dbms.Engine {
	t.Helper()
	e := dbms.MustNew(name)
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
		"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c'), (4, 40, 'd')",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateReadsUnifiedPlan(t *testing.T) {
	for _, name := range []string{"postgresql", "mysql", "tidb"} {
		c, err := New(seeded(t, name))
		if err != nil {
			t.Fatal(err)
		}
		est, err := c.Estimate("SELECT * FROM t0")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if est < 3 || est > 5 {
			t.Errorf("%s: base estimate = %v, want ≈4", name, est)
		}
	}
}

func TestMonotonicityHoldsOnCorrectEngine(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CheckPair(
		"SELECT * FROM t0 WHERE c1 > 15",
		"SELECT * FROM t0 WHERE c1 > 15 AND c2 = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("correct engine flagged: %v", v)
	}
}

func TestViolationDetected(t *testing.T) {
	e := seeded(t, "tidb")
	e.Opts.Quirks.PredicateInflatesEstimate = 1000
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CheckPair(
		"SELECT * FROM t0 WHERE c1 > 15",
		"SELECT * FROM t0 WHERE c1 > 15 AND c0 = 2")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("inflated estimate not flagged")
	}
	if v.RestrictedEst <= v.BaseEst {
		t.Errorf("violation fields: %+v", v)
	}
	if v.String() == "" {
		t.Error("violation must render")
	}
}

func TestRunSkipsUnplannable(t *testing.T) {
	e := seeded(t, "postgresql")
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	gen := sqlancer.New(3)
	gen.SchemaSQL(1, 0) // generator schema ≠ engine schema: pairs skipped
	if _, err := c.Run(gen, 10); err != nil {
		t.Fatalf("Run must tolerate unplannable pairs: %v", err)
	}
}
