package bugs

import (
	"testing"

	"uplan/internal/dbms"
	"uplan/internal/qpg"
	"uplan/internal/tlp"
)

func TestTableVShape(t *testing.T) {
	if len(TableV) != 17 {
		t.Fatalf("Table V has %d bugs, want 17", len(TableV))
	}
	counts := map[string]int{}
	byTool := map[string]int{}
	for _, b := range TableV {
		counts[b.DBMS]++
		byTool[b.FoundBy]++
		if b.Apply == nil || b.ID == "" || b.Severity == "" {
			t.Errorf("incomplete bug entry %+v", b)
		}
	}
	if counts["mysql"] != 7 || counts["postgresql"] != 1 || counts["tidb"] != 9 {
		t.Errorf("per-DBMS distribution = %v, want mysql:7 postgresql:1 tidb:9", counts)
	}
	if byTool["QPG"] != 13 || byTool["CERT"] != 4 {
		t.Errorf("per-tool distribution = %v, want QPG:13 CERT:4", byTool)
	}
}

func TestInjectedBugsAreOffByDefault(t *testing.T) {
	// A pristine engine must pass a short campaign with zero findings.
	for _, name := range []string{"mysql", "postgresql", "tidb"} {
		e := dbms.MustNew(name)
		opts := qpg.DefaultOptions()
		opts.Queries = 60
		opts.Seed = 7
		c, err := qpg.New(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Setup(2, 10); err != nil {
			t.Fatal(err)
		}
		findings := c.Run(opts)
		if len(findings) != 0 {
			t.Errorf("%s: pristine engine produced findings: %v", name, findings)
		}
		if c.NewPlans == 0 {
			t.Errorf("%s: QPG observed no plans", name)
		}
	}
}

func TestListing3CampaignFindsBug(t *testing.T) {
	// Bug 113302 is the paper's Listing 3; the campaign must rediscover it.
	var bug Bug
	for _, b := range TableV {
		if b.ID == "113302" {
			bug = b
		}
	}
	res, err := RunOne(bug, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("campaign did not find bug 113302")
	}
	t.Logf("evidence: %s", res.Evidence)
}

func TestCERTBugsFound(t *testing.T) {
	for _, b := range TableV {
		if b.FoundBy != "CERT" {
			continue
		}
		res, err := RunOne(b, 5, 120)
		if err != nil {
			t.Fatalf("%s/%s: %v", b.DBMS, b.ID, err)
		}
		if !res.Found {
			t.Errorf("CERT did not find %s/%s (%s)", b.DBMS, b.ID, b.Description)
		}
	}
}

func TestFullTableVCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	results, err := RunTableV(11, 350)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range results {
		if r.Found {
			found++
		} else {
			t.Logf("NOT FOUND: %s/%s — %s", r.Bug.DBMS, r.Bug.ID, r.Bug.Description)
		}
	}
	// The paper found 17 unique bugs in 24h; our deterministic budget must
	// rediscover at least 15 of the 17 injected defects.
	if found < 15 {
		t.Errorf("campaign found %d/17 bugs", found)
	}
}

func TestTLPOracleDirect(t *testing.T) {
	// Direct check that TLP catches the NOT-ignores-NULL defect.
	e := dbms.MustNew("mysql")
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT, c1 INT)",
		"INSERT INTO t0 VALUES (1, NULL), (2, 5), (3, 10)",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tlp.Check(e, "t0", "c1 > 6")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("correct engine violated TLP: %v", v)
	}
	e.Quirks.NotIgnoresNull = true
	v, err = tlp.Check(e, "t0", "c1 > 6")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("TLP missed the NOT-over-NULL defect")
	}
}
