// Package bugs is the injected-defect corpus reproducing the paper's
// Table V: the 17 previously unknown, unique bugs that QPG and CERT (both
// implemented DBMS-agnostically over UPlan) found in MySQL, PostgreSQL,
// and TiDB. Live bug-finding against production systems is replaced by
// defects injected into the simulated engines — each Table V bug ID maps
// to one concrete optimizer/executor/estimator fault, and the campaign
// measures whether the DBMS-agnostic testers rediscover it (see DESIGN.md,
// substitution table).
package bugs

import (
	"fmt"

	"uplan/internal/cert"
	"uplan/internal/dbms"
	"uplan/internal/planner"
	"uplan/internal/qpg"
	"uplan/internal/sqlancer"
)

// Bug is one Table V entry.
type Bug struct {
	DBMS     string // engine key
	FoundBy  string // "QPG" or "CERT"
	ID       string // tracker id from the paper
	Status   string
	Severity string
	// Description of the injected fault.
	Description string
	// Apply injects the fault into an engine.
	Apply func(e *dbms.Engine)
}

// TableV lists the 17 bugs in the paper's order.
var TableV = []Bug{
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "113302", Status: "Confirmed", Severity: "Critical",
		Description: "index lookup truncates decimal IN-list probes without recheck (paper Listing 3)",
		Apply:       func(e *dbms.Engine) { e.Quirks.IndexProbeTruncatesFloats = true },
	},
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "113304", Status: "Confirmed", Severity: "Critical",
		Description: "index range scan drops the inclusive lower boundary row",
		Apply:       func(e *dbms.Engine) { e.Quirks.IndexRangeSkipsBoundary = true },
	},
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "113317", Status: "Confirmed", Severity: "Critical",
		Description: "NOT over a NULL condition evaluates to TRUE",
		Apply:       func(e *dbms.Engine) { e.Quirks.NotIgnoresNull = true },
	},
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "114204", Status: "Confirmed", Severity: "Serious",
		Description: "LEFT JOIN executed as INNER JOIN, dropping unmatched rows",
		Apply:       func(e *dbms.Engine) { e.Quirks.LeftJoinAsInner = true },
	},
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "114217", Status: "Confirmed", Severity: "Serious",
		Description: "DISTINCT removes all-NULL rows entirely",
		Apply:       func(e *dbms.Engine) { e.Quirks.DistinctDropsNulls = true },
	},
	{
		DBMS: "mysql", FoundBy: "QPG", ID: "114218", Status: "Confirmed", Severity: "Serious",
		Description: "OFFSET applied after LIMIT",
		Apply:       func(e *dbms.Engine) { e.Quirks.LimitAppliesOffsetAfter = true },
	},
	{
		DBMS: "mysql", FoundBy: "CERT", ID: "114237", Status: "Confirmed", Severity: "Performance",
		Description: "equality predicate multiplies the cardinality estimate instead of reducing it",
		Apply:       func(e *dbms.Engine) { e.Opts.Quirks.PredicateInflatesEstimate = 2500 },
	},
	{
		DBMS: "postgresql", FoundBy: "CERT", ID: "Email", Status: "Pending", Severity: "Performance",
		Description: "adding an equality predicate inflates the estimate on analyzed tables",
		Apply:       func(e *dbms.Engine) { e.Opts.Quirks.PredicateInflatesEstimate = 800 },
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "49107", Status: "Fixed", Severity: "Major",
		Description: "hash join misses numerically equal keys of different types (1 vs 1.0)",
		Apply: func(e *dbms.Engine) {
			e.Quirks.HashJoinMissesCrossKind = true
			e.Opts.Join = planner.JoinPreferHash
		},
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "49108", Status: "Confirmed", Severity: "Major",
		Description: "GROUP BY omits the NULL group",
		Apply:       func(e *dbms.Engine) { e.Quirks.AggDropsNullGroups = true },
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "49109", Status: "Fixed", Severity: "Major",
		Description: "EXCEPT keeps duplicate rows",
		Apply:       func(e *dbms.Engine) { e.Quirks.ExceptKeepsDuplicates = true },
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "49110", Status: "Confirmed", Severity: "Major",
		Description: "merge join drops its final key group",
		Apply: func(e *dbms.Engine) {
			e.Quirks.MergeJoinDropsLastGroup = true
			e.Opts.Join = planner.JoinPreferMerge
		},
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "49131", Status: "Confirmed", Severity: "Major",
		Description: "UPDATE evaluates later SET expressions against already-updated rows",
		Apply:       func(e *dbms.Engine) { e.Quirks.UpdateUsesUpdatedRow = true },
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "51490", Status: "Confirmed", Severity: "Moderate",
		Description: "index range scan drops the inclusive boundary under cop task split",
		Apply:       func(e *dbms.Engine) { e.Quirks.IndexRangeSkipsBoundary = true },
	},
	{
		DBMS: "tidb", FoundBy: "QPG", ID: "51523", Status: "Confirmed", Severity: "Moderate",
		Description: "float index probes truncated during IndexLookUp",
		Apply:       func(e *dbms.Engine) { e.Quirks.IndexProbeTruncatesFloats = true },
	},
	{
		DBMS: "tidb", FoundBy: "CERT", ID: "51524", Status: "Confirmed", Severity: "Minor",
		Description: "equality predicates inflate estimated rows past the table cardinality",
		Apply:       func(e *dbms.Engine) { e.Opts.Quirks.PredicateInflatesEstimate = 1200 },
	},
	{
		DBMS: "tidb", FoundBy: "CERT", ID: "51525", Status: "Confirmed", Severity: "Minor",
		Description: "range selectivity floored above 1, inflating range-predicate estimates",
		Apply: func(e *dbms.Engine) {
			e.Opts.Quirks.RangeSelectivityFloor = 1.5
			e.Opts.Quirks.IgnoreHistogram = true
		},
	},
}

// CampaignResult records whether a bug was rediscovered.
type CampaignResult struct {
	Bug      Bug
	Found    bool
	Evidence string
	// QueriesRun is how many generated inputs were needed.
	QueriesRun int
}

// RunTableV runs the QPG/CERT campaign for every Table V bug: each bug is
// injected into a fresh engine of its DBMS, and the matching
// DBMS-agnostic tester runs until it rediscovers the defect or exhausts
// the budget.
func RunTableV(seed int64, queryBudget int) ([]CampaignResult, error) {
	var results []CampaignResult
	for _, bug := range TableV {
		res, err := RunOne(bug, seed, queryBudget)
		if err != nil {
			return nil, fmt.Errorf("bugs: %s/%s: %w", bug.DBMS, bug.ID, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RunOne hunts a single injected bug.
func RunOne(bug Bug, seed int64, queryBudget int) (CampaignResult, error) {
	e, err := dbms.New(bug.DBMS)
	if err != nil {
		return CampaignResult{}, err
	}
	bug.Apply(e)
	switch bug.FoundBy {
	case "CERT":
		return runCERT(bug, e, seed, queryBudget)
	default:
		return runQPG(bug, e, seed, queryBudget)
	}
}

func runQPG(bug Bug, e *dbms.Engine, seed int64, budget int) (CampaignResult, error) {
	opts := qpg.DefaultOptions()
	opts.Seed = seed
	opts.Queries = budget
	opts.MaxFindings = 1
	c, err := qpg.New(e, opts)
	if err != nil {
		return CampaignResult{}, err
	}
	if err := c.Setup(2, 12); err != nil {
		return CampaignResult{}, err
	}
	findings := c.Run(opts)
	res := CampaignResult{Bug: bug, QueriesRun: c.QueriesRun}
	if len(findings) > 0 {
		res.Found = true
		res.Evidence = findings[0].String()
	}
	return res, nil
}

func runCERT(bug Bug, e *dbms.Engine, seed int64, budget int) (CampaignResult, error) {
	gen := sqlancer.New(seed)
	for _, stmt := range gen.SchemaSQL(2, 30) {
		if _, err := e.Execute(stmt); err != nil {
			return CampaignResult{}, err
		}
	}
	if err := e.Analyze(); err != nil {
		return CampaignResult{}, err
	}
	checker, err := cert.New(e)
	if err != nil {
		return CampaignResult{}, err
	}
	violations, err := checker.Run(gen, budget)
	if err != nil {
		return CampaignResult{}, err
	}
	res := CampaignResult{Bug: bug, QueriesRun: checker.Checked}
	if len(violations) > 0 {
		res.Found = true
		res.Evidence = violations[0].String()
	}
	return res, nil
}
