package codec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uplan/internal/core"
)

// samplePlan builds a plan that exercises every corner of the format:
// all five value encodings, unknown operation and property categories,
// plan-associated properties, repeated strings (table dedup), and a tree
// whose shape mixes leaf and multi-child nodes.
func samplePlan() *core.Plan {
	scan1 := core.NewNode(core.Producer, "Full Table Scan")
	scan1.AddProperty(core.Cardinality, "rows", core.Num(1050))
	scan1.AddProperty(core.Configuration, "table", core.Str("lineitem"))
	scan2 := core.NewNode(core.Producer, "Full Table Scan")
	scan2.AddProperty(core.Cardinality, "rows", core.Num(25))
	scan2.AddProperty(core.Configuration, "table", core.Str("orders"))
	join := core.NewNode(core.Join, "Hash Join")
	join.AddProperty(core.Cost, "total_cost", core.Num(123.625))
	join.AddProperty(core.Configuration, "condition", core.Str("l_orderkey = o_orderkey"))
	join.AddProperty(core.Status, "parallel", core.BoolVal(true))
	join.AddProperty(core.PropertyCategory("Provenance"), "shard", core.Str("eu-1"))
	join.AddChild(scan1, scan2)
	sort := core.NewNode(core.Combinator, "Sort")
	sort.AddProperty(core.Configuration, "keys", core.Null())
	sort.AddProperty(core.Status, "spilled", core.BoolVal(false))
	sort.AddChild(join)
	exotic := core.NewNode(core.OperationCategory("Quantum"), "Entangle")
	exotic.AddProperty(core.Cardinality, "rows", core.Num(-17))
	root := core.NewNode(core.Projector, "Projection")
	root.AddChild(sort, exotic)
	p := &core.Plan{Source: "postgresql", Root: root}
	p.AddProperty(core.Cost, "planning_time", core.Num(0.183))
	p.AddProperty(core.Status, "jit", core.BoolVal(false))
	return p
}

func mustEncode(t *testing.T, p *core.Plan) []byte {
	t.Helper()
	blob, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return blob
}

func mustDecode(t *testing.T, blob []byte, ar *core.PlanArena) *core.Plan {
	t.Helper()
	p, err := DecodeInto(blob, ar)
	if err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	want := samplePlan()
	blob := mustEncode(t, want)
	got := mustDecode(t, blob, core.NewPlanArena())
	if !got.Equal(want) {
		t.Fatalf("round trip diverges:\n got: %s\nwant: %s",
			got.MarshalIndentedText(), want.MarshalIndentedText())
	}
	if got.Source != want.Source {
		t.Fatalf("Source = %q, want %q", got.Source, want.Source)
	}
	opts := core.FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	if got.FingerprintBytes(opts) != want.FingerprintBytes(opts) {
		t.Fatal("fingerprints diverge after round trip")
	}
}

// TestEncodeFixedPoint pins determinism: encoding is a pure function of
// the plan, and decode→encode reproduces the exact bytes.
func TestEncodeFixedPoint(t *testing.T) {
	p := samplePlan()
	b1 := mustEncode(t, p)
	b2 := mustEncode(t, p)
	if !bytes.Equal(b1, b2) {
		t.Fatal("two encodes of the same plan differ")
	}
	again := mustEncode(t, mustDecode(t, b1, nil))
	if !bytes.Equal(b1, again) {
		t.Fatal("encode→decode→encode is not byte-identical")
	}
}

// TestRoundTripEdgeShapes covers plans at the grammar's edges: no tree at
// all (InfluxDB-style property bags), a bare single node, and special
// float values.
func TestRoundTripEdgeShapes(t *testing.T) {
	plans := []*core.Plan{
		{Source: "influxdb", Properties: []core.Property{
			{Category: core.Cost, Name: "planning_time", Value: core.Num(1.5)},
		}},
		{},
		{Root: core.NewNode(core.Producer, "Values Scan")},
		{Root: core.NewNode(core.Executor, "Gather").AddProperty(core.Cost, "huge", core.Num(math.MaxFloat64)).
			AddProperty(core.Cost, "tiny", core.Num(5e-324)).
			AddProperty(core.Cardinality, "big_int", core.Num(1<<53)).
			AddProperty(core.Cardinality, "neg", core.Num(-(1 << 53)))},
	}
	for i, want := range plans {
		blob := mustEncode(t, want)
		got := mustDecode(t, blob, nil)
		if !got.Equal(want) || got.Source != want.Source {
			t.Errorf("plan %d: round trip diverges", i)
		}
	}
}

// TestZigzagCompaction checks the point of the integral encoding: whole
// cardinalities cost a couple of bytes, not eight.
func TestZigzagCompaction(t *testing.T) {
	small := &core.Plan{Root: core.NewNode(core.Producer, "S").
		AddProperty(core.Cardinality, "r", core.Num(42))}
	frac := &core.Plan{Root: core.NewNode(core.Producer, "S").
		AddProperty(core.Cardinality, "r", core.Num(42.5))}
	bs := mustEncode(t, small)
	bf := mustEncode(t, frac)
	if len(bs) >= len(bf) {
		t.Fatalf("integral value (%d bytes) not smaller than fractional (%d bytes)", len(bs), len(bf))
	}
}

func TestEncodeNilPlan(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("Encode(nil) succeeded")
	}
}

// TestDecodeRejectsCorruption walks the usual corruption classes: short
// input, wrong magic, future version, truncations, and trailing garbage —
// every one must fail with ErrCorrupt, never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	blob := mustEncode(t, samplePlan())
	cases := map[string][]byte{
		"empty":        {},
		"short-header": blob[:3],
		"bad-magic":    append([]byte("XXB"), blob[3:]...),
		"bad-version":  append([]byte("UPB\x7f"), blob[4:]...),
		"trailing":     append(append([]byte{}, blob...), 0x00),
	}
	for i := 4; i < len(blob); i += 7 {
		cases[fmt.Sprintf("truncated@%d", i)] = blob[:i]
	}
	for name, data := range cases {
		if _, err := DecodeInto(data, nil); err == nil {
			t.Errorf("%s: corrupt input decoded successfully", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// TestDecodeRejectsNonCanonicalVarint pins the single-representation rule.
func TestDecodeRejectsNonCanonicalVarint(t *testing.T) {
	// Header + empty table (count 0) + node count 0 encoded non-minimally
	// as {0x80, 0x00}.
	data := []byte{'U', 'P', 'B', Version, 0x00, 0x80, 0x00}
	if _, err := DecodeInto(data, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-canonical varint accepted (err=%v)", err)
	}
}

// TestDecodeRejectsInconsistentTree covers shape corruption the varint
// layer cannot catch: child counts that over- or under-promise nodes.
func TestDecodeRejectsInconsistentTree(t *testing.T) {
	var e encoder
	// Record claiming 2 nodes whose root declares 0 children.
	rec := []byte{2}                       // node count
	rec = append(rec, byte(e.ref("src"))) // source ref
	rec = append(rec, 0)                  // plan props
	rec = append(rec, 0, byte(e.ref("A")), 0, 0) // node 0: Producer, no props, 0 children
	rec = append(rec, 0, byte(e.ref("A")), 0, 0) // node 1: orphan
	blob := append([]byte{'U', 'P', 'B', Version}, e.appendTable(nil)...)
	blob = append(blob, rec...)
	if _, err := DecodeInto(blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("orphan node accepted (err=%v)", err)
	}

	var e2 encoder
	// Record claiming 2 nodes whose root promises 2 children.
	rec = []byte{2}
	rec = append(rec, byte(e2.ref("src")))
	rec = append(rec, 0)
	rec = append(rec, 0, byte(e2.ref("A")), 0, 2)
	rec = append(rec, 0, byte(e2.ref("A")), 0, 0)
	blob = append([]byte{'U', 'P', 'B', Version}, e2.appendTable(nil)...)
	blob = append(blob, rec...)
	if _, err := DecodeInto(blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-promised children accepted (err=%v)", err)
	}
}

// TestDecodeDeepChainNoOverflow proves the explicit-stack decode survives
// a pathological linear chain that would overflow a recursive decoder.
func TestDecodeDeepChainNoOverflow(t *testing.T) {
	const depth = 200_000
	var e encoder
	rec := make([]byte, 0, depth*4)
	rec = appendUvarintTest(rec, depth)
	rec = appendUvarintTest(rec, e.ref(""))
	rec = append(rec, 0)
	nameRef := e.ref("N")
	for i := 0; i < depth; i++ {
		children := byte(1)
		if i == depth-1 {
			children = 0
		}
		rec = append(rec, 0)
		rec = appendUvarintTest(rec, nameRef)
		rec = append(rec, 0, children)
	}
	blob := append([]byte{'U', 'P', 'B', Version}, e.appendTable(nil)...)
	blob = append(blob, rec...)
	p, err := DecodeInto(blob, core.NewPlanArena())
	if err != nil {
		t.Fatalf("deep chain: %v", err)
	}
	if got := p.NodeCount(); got != depth {
		t.Fatalf("deep chain: %d nodes, want %d", got, depth)
	}
}

func appendUvarintTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// TestCorpusRoundTrip packs a corpus through a file, reads it back via
// OpenCorpus (the mmap path on unix), and checks every plan and the
// Rewind/Close contracts.
func TestCorpusRoundTrip(t *testing.T) {
	plans := []*core.Plan{samplePlan(), {}, {Source: "mysql", Root: core.NewNode(core.Producer, "Index Scan")}}
	path := filepath.Join(t.TempDir(), "plans.upc")
	if err := WriteCorpusFile(path, plans); err != nil {
		t.Fatalf("WriteCorpusFile: %v", err)
	}
	r, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	if r.Len() != len(plans) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(plans))
	}
	ar := core.NewPlanArena()
	for pass := 0; pass < 2; pass++ {
		for i, want := range plans {
			ar.Reset()
			got, err := r.Next(ar)
			if err != nil {
				t.Fatalf("pass %d plan %d: %v", pass, i, err)
			}
			if !got.Equal(want) || got.Source != want.Source {
				t.Fatalf("pass %d plan %d diverges", pass, i)
			}
		}
		if _, err := r.Next(ar); err != io.EOF {
			t.Fatalf("pass %d: after last plan err = %v, want io.EOF", pass, err)
		}
		r.Rewind()
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Next(ar); err == nil {
		t.Fatal("Next succeeded on a closed reader")
	}
}

func TestCorpusWriterSingleUse(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	if err := cw.Add(samplePlan()); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Add(samplePlan()); err == nil {
		t.Fatal("Add after Flush succeeded")
	}
	if err := cw.Flush(); err == nil {
		t.Fatal("second Flush succeeded")
	}
	// The flushed bytes must read back.
	r, err := NewCorpusReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestCorpusRejectsTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	if err := cw.Add(samplePlan()); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0xEE)
	r, err := NewCorpusReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(nil); err != nil {
		t.Fatalf("first plan: %v", err)
	}
	if _, err := r.Next(nil); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage not reported: err = %v", err)
	}
}

// TestCorpusEmptyFile: zero plans is a valid corpus (mmap of an empty
// region is the edge the size check guards).
func TestCorpusEmptyCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.upc")
	if err := WriteCorpusFile(path, nil); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if _, err := r.Next(nil); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// TestTableSharing pins the factorised-representation property: a corpus
// of N identical plans is far smaller than N single-plan blobs because
// the table is stored once.
func TestTableSharing(t *testing.T) {
	p := samplePlan()
	single := mustEncode(t, p)
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	const n = 50
	for i := 0; i < n; i++ {
		if err := cw.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= n*len(single)/2 {
		t.Fatalf("corpus of %d identical plans is %d bytes; %d single blobs are %d — table not shared",
			n, buf.Len(), n, n*len(single))
	}
}

// TestDecodeIntoWarmArena pins the reuse contract: decoding the same blob
// repeatedly into one Reset arena must not grow allocations per decode
// beyond the single-digit budget (plan header + decode bookkeeping; all
// nodes, properties, and strings come from warm slabs and the intern
// table).
func TestDecodeIntoWarmArena(t *testing.T) {
	blob := mustEncode(t, samplePlan())
	ar := core.NewPlanArena()
	// Warm up slabs and intern table.
	for i := 0; i < 3; i++ {
		ar.Reset()
		mustDecode(t, blob, ar)
	}
	avg := testing.AllocsPerRun(100, func() {
		ar.Reset()
		if _, err := DecodeInto(blob, ar); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 9 {
		t.Fatalf("warm-arena decode: %.1f allocs/op, budget 9", avg)
	}
}

// TestDecodedPlanSurvivesClose proves the no-alias contract: plans decoded
// from a corpus stay intact after the reader is closed and its buffer
// conceptually unmapped.
func TestDecodedPlanSurvivesClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.upc")
	want := samplePlan()
	if err := WriteCorpusFile(path, []*core.Plan{want}); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !strings.Contains(got.MarshalText(), "Hash_Join") {
		t.Fatal("decoded plan corrupted after reader Close")
	}
}
