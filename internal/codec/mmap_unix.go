//go:build unix

package codec

import (
	"os"
	"syscall"
)

// mapFile returns the file's contents as a read-only memory mapping plus
// the function that releases it. Empty files and mmap failures (exotic
// filesystems) fall back to reading the file whole, in which case unmap is
// nil and Close has nothing to release.
func mapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 || int64(int(size)) != size {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	return m, func() error { return syscall.Munmap(m) }, nil
}
