//go:build !unix

package codec

import "os"

// mapFile on platforms without a usable mmap reads the file whole; unmap
// is nil and Close has nothing to release.
func mapFile(path string) (data []byte, unmap func() error, err error) {
	data, err = os.ReadFile(path)
	return data, nil, err
}
