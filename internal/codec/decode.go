package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"uplan/internal/core"
)

// corrupt wraps a decode failure so errors.Is(err, ErrCorrupt) holds.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// checkHeader validates the four-byte magic/version prefix and returns the
// bytes after it.
func checkHeader(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic)+1 {
		return nil, corrupt("input of %d bytes is shorter than the header", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corrupt("bad magic %q (want %q)", data[:len(magic)], magic)
	}
	if v := data[len(magic)]; v != Version {
		return nil, corrupt("unknown format version %d (have %d)", v, Version)
	}
	return data[len(magic)+1:], nil
}

// parseTable reads the string table section, materializing each entry
// through ar.InternBytes — once per distinct string for a warm arena, and
// never aliasing data — and returns the table plus the bytes after it.
func parseTable(data []byte, ar *core.PlanArena) ([]string, []byte, error) {
	count, n, err := readUvarint(data, 0)
	if err != nil {
		return nil, nil, err
	}
	off := n
	if count > maxTableEntries || count > uint64(len(data)-off) {
		return nil, nil, corrupt("string table declares %d entries in %d remaining bytes", count, len(data)-off)
	}
	// First pass over the lengths: validate and find the byte region.
	lenStart := off
	total := 0
	for i := uint64(0); i < count; i++ {
		l, n, err := readUvarint(data, off)
		if err != nil {
			return nil, nil, err
		}
		off = n
		if l > maxStringLen {
			return nil, nil, corrupt("table entry %d declares %d bytes", i, l)
		}
		total += int(l)
		if total > len(data)-off {
			return nil, nil, corrupt("string table overruns the input")
		}
	}
	bytesStart := off
	// Second pass re-reads the (already validated) lengths and slices the
	// concatenated region, avoiding a temporary length slice.
	table := make([]string, count)
	off, pos := lenStart, bytesStart
	for i := range table {
		l, n, _ := readUvarint(data, off)
		off = n
		table[i] = ar.InternBytes(data[pos : pos+int(l)])
		pos += int(l)
	}
	return table, data[bytesStart+total:], nil
}

// readUvarint decodes a canonical (minimal-length) uvarint at data[off:]
// and returns the value and the offset after it. Non-minimal encodings are
// rejected so every value has exactly one representation — the property
// that makes encode a fixed point and lets the store-style fuzz harness
// assert deterministic re-encoding.
func readUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, corrupt("truncated or oversized varint at offset %d", off)
	}
	if n > 1 && v < 1<<uint(7*(n-1)) {
		return 0, 0, corrupt("non-canonical varint at offset %d", off)
	}
	return v, off + n, nil
}

// decoder is the forward-pass cursor over a plan record. The table is
// parsed up front (per blob for DecodeInto, once per file for a
// CorpusReader), so record decoding itself touches only data and table.
type decoder struct {
	data  []byte
	off   int
	table []string
}

func (d *decoder) uvarint() (uint64, error) {
	v, n, err := readUvarint(d.data, d.off)
	d.off = n
	return v, err
}

func (d *decoder) str(ref uint64) (string, error) {
	if ref >= uint64(len(d.table)) {
		return "", corrupt("string ref %d out of range (table has %d entries)", ref, len(d.table))
	}
	return d.table[ref], nil
}

// decodePlan decodes one plan record into ar. Children counts are declared
// by each parent and nodes arrive pre-order, so the tree is rebuilt in a
// single forward pass with an explicit frame stack — no recursion, so a
// crafted million-deep chain costs memory proportional to its depth but
// can never overflow the goroutine stack.
//
//uplan:hotpath
func (d *decoder) decodePlan(ar *core.PlanArena) (*core.Plan, error) {
	nodes, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nodes > maxNodes || nodes > uint64(len(d.data)-d.off) {
		return nil, corrupt("plan declares %d nodes in %d remaining bytes", nodes, len(d.data)-d.off)
	}
	srcRef, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	src, err := d.str(srcRef)
	if err != nil {
		return nil, err
	}
	p := &core.Plan{Source: src}
	if err := d.decodeProps(ar, nil, p); err != nil {
		return nil, err
	}
	if nodes == 0 {
		return p, nil
	}

	// frame tracks a parent still owed children. The small backing array
	// keeps typical trees (depth ≤ 16) off the heap.
	type frame struct {
		n    *core.Node
		left uint64
	}
	var stackArr [16]frame
	stack := stackArr[:0]
	declared := uint64(0) // children promised so far; must total nodes-1
	for i := uint64(0); i < nodes; i++ {
		catCode, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		var cat core.OperationCategory
		if catCode < uint64(len(core.OperationCategories)) {
			cat = core.OperationCategories[catCode]
		} else {
			s, err := d.str(catCode - uint64(len(core.OperationCategories)))
			if err != nil {
				return nil, err
			}
			cat = core.OperationCategory(s)
		}
		nameRef, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := d.str(nameRef)
		if err != nil {
			return nil, err
		}
		n := ar.NewNodeIn(cat, name)
		if err := d.decodeProps(ar, n, nil); err != nil {
			return nil, err
		}
		children, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		declared += children
		if declared > nodes-1 {
			return nil, corrupt("nodes declare %d children but only %d non-root nodes exist", declared, nodes-1)
		}
		if i == 0 {
			p.Root = n
		} else {
			if len(stack) == 0 {
				return nil, corrupt("node %d has no pending parent", i)
			}
			top := &stack[len(stack)-1]
			ar.AddChildIn(top.n, n)
			top.left--
		}
		if children > 0 {
			stack = append(stack, frame{n, children})
		}
		for len(stack) > 0 && stack[len(stack)-1].left == 0 {
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 || declared != nodes-1 {
		return nil, corrupt("plan record ends with %d children still missing", nodes-1-declared)
	}
	return p, nil
}

// decodeProps decodes one property-list section into n's property list
// (or, when n is nil, into pl's plan-associated list), appending in the
// arena. The explicit target instead of a callback keeps the per-node loop
// free of closure allocations.
//
//uplan:hotpath
func (d *decoder) decodeProps(ar *core.PlanArena, n *core.Node, pl *core.Plan) error {
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	// A property is at least three bytes (category, name ref, value tag).
	if count > maxProps || count > uint64(len(d.data)-d.off) {
		return corrupt("property list declares %d entries in %d remaining bytes", count, len(d.data)-d.off)
	}
	for i := uint64(0); i < count; i++ {
		catCode, err := d.uvarint()
		if err != nil {
			return err
		}
		var cat core.PropertyCategory
		if catCode < uint64(len(core.PropertyCategories)) {
			cat = core.PropertyCategories[catCode]
		} else {
			s, err := d.str(catCode - uint64(len(core.PropertyCategories)))
			if err != nil {
				return err
			}
			cat = core.PropertyCategory(s)
		}
		nameRef, err := d.uvarint()
		if err != nil {
			return err
		}
		name, err := d.str(nameRef)
		if err != nil {
			return err
		}
		v, err := d.decodeValue()
		if err != nil {
			return err
		}
		if n != nil {
			ar.AddPropertyIn(n, cat, name, v)
		} else {
			ar.AddPlanPropertyIn(pl, cat, name, v)
		}
	}
	return nil
}

// decodeValue decodes one value.
//
//uplan:hotpath
func (d *decoder) decodeValue() (core.Value, error) {
	if d.off >= len(d.data) {
		return core.Value{}, corrupt("truncated value at offset %d", d.off)
	}
	tag := d.data[d.off]
	d.off++
	switch tag {
	case valNull:
		return core.Null(), nil
	case valString:
		ref, err := d.uvarint()
		if err != nil {
			return core.Value{}, err
		}
		s, err := d.str(ref)
		if err != nil {
			return core.Value{}, err
		}
		return core.Str(s), nil
	case valFloat:
		if len(d.data)-d.off < 8 {
			return core.Value{}, corrupt("truncated float64 at offset %d", d.off)
		}
		bits := binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
		return core.Num(math.Float64frombits(bits)), nil
	case valTrue:
		return core.BoolVal(true), nil
	case valFalse:
		return core.BoolVal(false), nil
	case valZigzag:
		u, err := d.uvarint()
		if err != nil {
			return core.Value{}, err
		}
		i := int64(u>>1) ^ -int64(u&1)
		return core.Num(float64(i)), nil
	default:
		return core.Value{}, corrupt("unknown value kind tag %d", tag)
	}
}

// DecodeInto decodes a plan blob produced by Encode, building the plan in
// ar (heap fallback on nil). The decoded plan follows the arena lifecycle:
// it is invalidated by ar.Reset unless detached with Plan.Clone first.
// Strings never alias data — table entries are interned through
// ar.InternBytes — so the caller may discard or reuse the input buffer
// immediately. All failures wrap ErrCorrupt.
func DecodeInto(data []byte, ar *core.PlanArena) (*core.Plan, error) {
	rest, err := checkHeader(data, planMagic)
	if err != nil {
		return nil, err
	}
	table, rest, err := parseTable(rest, ar)
	if err != nil {
		return nil, err
	}
	d := decoder{data: rest, table: table}
	p, err := d.decodePlan(ar)
	if err != nil {
		return nil, err
	}
	if d.off != len(d.data) {
		return nil, corrupt("%d trailing bytes after the plan record", len(d.data)-d.off)
	}
	return p, nil
}
