package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"uplan/internal/core"
)

// FuzzCodecFrame fuzzes the binary decoders the way FuzzRecordFrame
// fuzzes the store's record frames: seeds are valid blobs plus systematic
// truncations and bit flips, and the invariants are
//
//  1. no input panics or over-reads either decoder;
//  2. any successfully decoded plan re-encodes without error, and the
//     re-encoded blob is a fixed point: it decodes to an Equal plan with
//     the same Source and re-encodes byte-identically (the input itself
//     need not be canonical — fuzzed tables may hold unused entries);
//  3. the corpus reader's cursor never yields more plans than Len().
func FuzzCodecFrame(f *testing.F) {
	planBlob, err := Encode(fuzzSeedPlan())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := cw.Add(fuzzSeedPlan()); err != nil {
			f.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		f.Fatal(err)
	}
	corpusBlob := buf.Bytes()

	for _, seed := range [][]byte{planBlob, corpusBlob} {
		f.Add(seed)
		// Truncations at the structurally interesting offsets.
		for _, cut := range []int{0, 1, 2, 3, 7, len(seed) / 2, len(seed) - 1} {
			if cut >= 0 && cut <= len(seed) {
				f.Add(seed[:cut])
			}
		}
		// Bit flips sweeping header, table, and record regions.
		for pos := 0; pos < len(seed); pos += 5 {
			flipped := append([]byte(nil), seed...)
			flipped[pos] ^= 1 << (pos % 8)
			f.Add(flipped)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ar := core.NewPlanArena()
		if p, err := DecodeInto(data, ar); err == nil {
			checkReencode(t, p)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeInto error %v does not wrap ErrCorrupt", err)
		}
		r, err := NewCorpusReader(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewCorpusReader error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		seen := 0
		for {
			ar.Reset()
			p, err := r.Next(ar)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Next error %v does not wrap ErrCorrupt", err)
				}
				break
			}
			seen++
			if seen > r.Len() {
				t.Fatalf("reader yielded %d plans but Len() = %d", seen, r.Len())
			}
			checkReencode(t, p)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// checkReencode asserts invariant 2: decoded plans re-encode
// deterministically to a decode→encode fixed point.
func checkReencode(t *testing.T, p *core.Plan) {
	t.Helper()
	blob, err := Encode(p)
	if err != nil {
		t.Fatalf("re-encoding a decoded plan: %v", err)
	}
	p2, err := DecodeInto(blob, nil)
	if err != nil {
		t.Fatalf("decoding a re-encoded plan: %v", err)
	}
	if !p2.Equal(p) || p2.Source != p.Source {
		t.Fatal("re-encoded plan decodes to a different plan")
	}
	blob2, err := Encode(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encode is not a byte-identical fixed point")
	}
}

func fuzzSeedPlan() *core.Plan {
	scan := core.NewNode(core.Producer, "Seq Scan")
	scan.AddProperty(core.Cardinality, "rows", core.Num(100))
	scan.AddProperty(core.Configuration, "filter", core.Str("a > 1"))
	agg := core.NewNode(core.Folder, "Aggregate")
	agg.AddProperty(core.Cost, "total", core.Num(12.5))
	agg.AddProperty(core.Status, "parallel", core.BoolVal(false))
	agg.AddProperty(core.PropertyCategory("Exotic"), "x", core.Null())
	agg.AddChild(scan)
	p := &core.Plan{Source: "postgresql", Root: agg}
	p.AddProperty(core.Cost, "planning_time", core.Num(0.5))
	return p
}
