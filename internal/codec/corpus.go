package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"uplan/internal/core"
)

// CorpusWriter packs many plans into one corpus blob with a single shared
// string table. Records are buffered as plans are Added (the table cannot
// be written until every plan has registered its strings), and the whole
// corpus — header, table, count, records — is written by one Flush.
//
// The writer is single-use: after Flush (or the first error), Add and
// Flush fail. Errors are sticky, so a loop of Adds may check only Flush.
type CorpusWriter struct {
	w       io.Writer
	enc     encoder
	recs    []byte
	count   int
	flushed bool
}

// NewCorpusWriter returns a writer that will emit the corpus to w on Flush.
func NewCorpusWriter(w io.Writer) *CorpusWriter {
	return &CorpusWriter{w: w}
}

// Add appends one plan to the corpus. The plan is fully serialized into
// the writer's buffer during the call, so it may be arena-Reset or mutated
// afterwards.
func (cw *CorpusWriter) Add(p *core.Plan) error {
	if cw.flushed {
		return errors.New("codec: Add after Flush on a corpus writer")
	}
	if cw.enc.err != nil {
		return cw.enc.err
	}
	recs, err := cw.enc.appendPlan(cw.recs, p)
	if err != nil {
		if cw.enc.err == nil {
			cw.enc.err = err // make plan-level failures sticky too
		}
		return err
	}
	cw.recs = recs
	cw.count++
	return nil
}

// Count returns the number of plans added so far.
func (cw *CorpusWriter) Count() int { return cw.count }

// Flush assembles the corpus and writes it to the underlying writer. It
// must be called exactly once; its error is the durability signal — a
// dropped Flush error means a corpus the caller believes written may be
// missing or torn.
func (cw *CorpusWriter) Flush() error {
	if cw.flushed {
		return errors.New("codec: corpus writer already flushed")
	}
	if cw.enc.err != nil {
		return cw.enc.err
	}
	cw.flushed = true
	// Header + table sized exactly; records appended from the buffer.
	out := make([]byte, 0, len(corpusMagic)+1+binary.MaxVarintLen64*(2+len(cw.enc.entries))+cw.enc.nbytes+len(cw.recs))
	out = append(out, corpusMagic...)
	out = append(out, Version)
	out = cw.enc.appendTable(out)
	out = binary.AppendUvarint(out, uint64(cw.count))
	out = append(out, cw.recs...)
	if _, err := cw.w.Write(out); err != nil {
		return fmt.Errorf("codec: writing corpus: %w", err)
	}
	return nil
}

// WriteCorpusFile packs plans into path in one call: create, write, sync,
// close. Convenience over CorpusWriter for the pack tooling.
func WriteCorpusFile(path string, plans []*core.Plan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := NewCorpusWriter(f)
	for _, p := range plans {
		if err := cw.Add(p); err != nil {
			f.Close()
			return err
		}
	}
	if err := cw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CorpusReader iterates the plans of a corpus blob. The string table is
// parsed once at construction — the "interned once per file" half of the
// zero-copy contract — and each Next is then a pure forward pass over the
// mapped (or in-memory) bytes, building the plan in the caller's arena.
//
// A reader is not safe for concurrent use. Closing a reader unmaps its
// file; plans decoded from it remain valid (their strings are independent
// of the mapping), subject only to their arena's lifecycle.
type CorpusReader struct {
	data   []byte
	table  []string
	plans  int
	body   int // offset of the first plan record
	off    int
	idx    int
	unmap  func() error
	closed bool
}

// NewCorpusReader opens a corpus held in memory. The reader keeps data and
// reads from it on every Next; the caller must not mutate it while the
// reader is in use.
func NewCorpusReader(data []byte) (*CorpusReader, error) {
	rest, err := checkHeader(data, corpusMagic)
	if err != nil {
		return nil, err
	}
	table, rest, err := parseTable(rest, nil)
	if err != nil {
		return nil, err
	}
	count, n, err := readUvarint(rest, 0)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(rest)-n) {
		return nil, corrupt("corpus declares %d plans in %d remaining bytes", count, len(rest)-n)
	}
	body := len(data) - len(rest) + n
	return &CorpusReader{data: data, table: table, plans: int(count), body: body, off: body}, nil
}

// OpenCorpus opens a corpus file, memory-mapping it when the platform
// supports that (falling back to reading it whole). Close releases the
// mapping.
func OpenCorpus(path string) (*CorpusReader, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := NewCorpusReader(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	r.unmap = unmap
	return r, nil
}

// Len returns the number of plans the corpus declares.
func (r *CorpusReader) Len() int { return r.plans }

// Next decodes the next plan into ar (heap fallback on nil) and returns
// io.EOF — after verifying no trailing garbage follows the last record —
// once the corpus is exhausted. A decode error poisons the cursor; Rewind
// restarts from the first plan.
func (r *CorpusReader) Next(ar *core.PlanArena) (*core.Plan, error) {
	if r.closed {
		return nil, errors.New("codec: Next on a closed corpus reader")
	}
	if r.idx >= r.plans {
		if r.off != len(r.data) {
			return nil, corrupt("%d trailing bytes after the last plan record", len(r.data)-r.off)
		}
		return nil, io.EOF
	}
	d := decoder{data: r.data, off: r.off, table: r.table}
	p, err := d.decodePlan(ar)
	if err != nil {
		r.idx = r.plans
		r.off = len(r.data) + 1 // poison: the trailing-bytes check fails too
		return nil, fmt.Errorf("plan %d: %w", r.idx, err)
	}
	r.off = d.off
	r.idx++
	return p, nil
}

// Rewind resets the cursor to the first plan, letting one reader (and its
// one-per-file table) serve many passes.
func (r *CorpusReader) Rewind() {
	r.off = r.body
	r.idx = 0
}

// Close releases the reader's file mapping. It must be called on readers
// from OpenCorpus — a dropped Close error (or a dropped Close) leaks the
// mapping for the life of the process. Close is idempotent; Next fails
// after it.
func (r *CorpusReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.data = nil
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		return u()
	}
	return nil
}
