// Package codec implements a compact binary serialization of unified query
// plans — the interchange companion to the canonical text (text.go) and
// JSON (json.go) formats of the paper's Listing 2.
//
// The format applies the same compaction insight as factorised result
// representations: every repeated string is stored once and referenced by
// index. A plan blob is
//
//	magic "UPB" | version (1 byte)
//	string table: uvarint entry count,
//	              entry count × uvarint byte length,
//	              all entry bytes concatenated
//	plan record
//
// and a plan record is
//
//	uvarint node count
//	uvarint source ref
//	uvarint plan-property count, properties
//	node records, depth-first pre-order
//
// where a node record is
//
//	uvarint op category (0–6 canonical index, else 7+ref)
//	uvarint op name ref
//	uvarint property count, properties
//	uvarint child count        (children follow immediately, pre-order)
//
// a property is
//
//	uvarint category (0–3 canonical index, else 4+ref) | uvarint name ref | value
//
// and a value is a one-byte kind tag: 0 null; 1 string (uvarint ref);
// 2 float64 (8 bytes little-endian IEEE bits); 3 true; 4 false; 5 integral
// number (zigzag varint). Integral float64s take the zigzag form, so
// cardinalities and costs — overwhelmingly whole numbers — cost one to
// three bytes instead of eight.
//
// Because children counts are declared by the parent and nodes are written
// pre-order, decoding is a single forward pass with an explicit stack: no
// seeking, no recursion, no second pass. All varints must be canonical
// (minimal length); Encode is a fixed point, so encode→decode→encode is
// byte-identical.
//
// A corpus file (CorpusWriter / CorpusReader) is the same layout with magic
// "UPC", one string table shared by all plans, and a uvarint plan count
// before the records:
//
//	magic "UPC" | version | string table | uvarint plan count | plan records
//
// # Arena ownership
//
// DecodeInto builds the plan's nodes, property lists, and child lists in
// the caller's PlanArena (heap fallback on nil), so the decoded plan
// follows the arena lifecycle rules of core.PlanArena: it is invalidated by
// Reset unless detached with Plan.Clone. Strings are independent of both
// the arena and the input buffer — table entries are materialized through
// PlanArena.InternBytes (once per distinct string for a warm arena, since
// the intern table survives Reset) — so a clone never aliases the encoded
// bytes and a CorpusReader may be Closed (unmapping its file) while decoded
// plans live on.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"uplan/internal/core"
)

// The three-byte magics and the format version. A version bump is a
// breaking change: decoders reject versions they do not know.
const (
	planMagic   = "UPB"
	corpusMagic = "UPC"
	Version     = 1
)

// Defensive bounds. They exist so a corrupt or hostile length prefix fails
// fast instead of provoking a huge allocation; every count is additionally
// bounded by the remaining input bytes during decode.
const (
	maxStringLen    = 1 << 28 // longest single table entry
	maxTableEntries = 1 << 24
	maxNodes        = 1 << 24
	maxProps        = 1 << 24
)

// maxZigzagInt bounds the integral values that use the zigzag encoding:
// beyond 2⁵³ a float64 no longer represents every integer, so the
// int64 round trip would be lossy.
const maxZigzagInt = 1 << 53

// ErrCorrupt is wrapped by every decode error: the input is not a valid
// plan blob or corpus (bad magic, unknown version, truncated or
// non-canonical varint, out-of-range reference, inconsistent tree shape).
// Callers distinguish "bad input" from I/O failures with errors.Is.
var ErrCorrupt = errors.New("codec: corrupt or truncated plan data")

// encoder accumulates the string table while plan records are appended.
// Errors are sticky: ref keeps returning indexes after a failure so record
// encoding can run unconditionally, and the caller checks err once at the
// end — the same discipline as the store's sticky write failures.
type encoder struct {
	index   map[string]uint64
	entries []string
	nbytes  int
	err     error
}

// ref returns the table index for s, adding it on first use. The
// first-use-order assignment is what makes Encode deterministic and a
// fixed point under decode→encode.
func (e *encoder) ref(s string) uint64 {
	if i, ok := e.index[s]; ok {
		return i
	}
	if e.err != nil {
		return 0
	}
	if len(s) > maxStringLen {
		e.err = fmt.Errorf("codec: string of %d bytes exceeds the %d-byte table entry limit", len(s), maxStringLen)
		return 0
	}
	if len(e.entries) >= maxTableEntries {
		e.err = fmt.Errorf("codec: string table exceeds %d entries", maxTableEntries)
		return 0
	}
	if e.index == nil {
		e.index = make(map[string]uint64, 64)
	}
	i := uint64(len(e.entries))
	e.index[s] = i
	e.entries = append(e.entries, s)
	e.nbytes += len(s)
	return i
}

// appendTable appends the string table section: entry count, lengths,
// concatenated bytes.
func (e *encoder) appendTable(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.entries)))
	for _, s := range e.entries {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
	}
	for _, s := range e.entries {
		dst = append(dst, s...)
	}
	return dst
}

// appendPlan appends p's plan record to dst, registering every string in
// the encoder's table.
func (e *encoder) appendPlan(dst []byte, p *core.Plan) ([]byte, error) {
	if p == nil {
		return dst, errors.New("codec: cannot encode a nil plan")
	}
	nodes := p.NodeCount()
	if nodes > maxNodes {
		return dst, fmt.Errorf("codec: plan of %d nodes exceeds the %d-node limit", nodes, maxNodes)
	}
	dst = binary.AppendUvarint(dst, uint64(nodes))
	dst = binary.AppendUvarint(dst, e.ref(p.Source))
	dst = e.appendProps(dst, p.Properties)
	var walk func(dst []byte, n *core.Node) []byte
	walk = func(dst []byte, n *core.Node) []byte {
		if ci := core.CategoryIndex(n.Op.Category); ci >= 0 {
			dst = binary.AppendUvarint(dst, uint64(ci))
		} else {
			dst = binary.AppendUvarint(dst, uint64(len(core.OperationCategories))+e.ref(string(n.Op.Category)))
		}
		dst = binary.AppendUvarint(dst, e.ref(n.Op.Name))
		dst = e.appendProps(dst, n.Properties)
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, c := range n.Children {
			dst = walk(dst, c)
		}
		return dst
	}
	if p.Root != nil {
		dst = walk(dst, p.Root)
	}
	return dst, e.err
}

// appendProps appends a property-list section: count, then properties.
func (e *encoder) appendProps(dst []byte, props []core.Property) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(props)))
	for i := range props {
		pr := &props[i]
		if ci := core.PropertyCategoryIndex(pr.Category); ci >= 0 {
			dst = binary.AppendUvarint(dst, uint64(ci))
		} else {
			dst = binary.AppendUvarint(dst, uint64(len(core.PropertyCategories))+e.ref(string(pr.Category)))
		}
		dst = binary.AppendUvarint(dst, e.ref(pr.Name))
		dst = e.appendValue(dst, pr.Value)
	}
	return dst
}

// Value kind tags.
const (
	valNull   = 0
	valString = 1
	valFloat  = 2
	valTrue   = 3
	valFalse  = 4
	valZigzag = 5
)

// appendValue appends one value. Integral numbers within float64's exact
// range use the compact zigzag form; the decoder reproduces an equal
// float64 (−0.0 canonicalizes to +0.0, which compares, formats, and
// fingerprints identically).
func (e *encoder) appendValue(dst []byte, v core.Value) []byte {
	switch v.Kind {
	case core.KindString:
		dst = append(dst, valString)
		return binary.AppendUvarint(dst, e.ref(v.Str))
	case core.KindNumber:
		f := v.Num
		if f == math.Trunc(f) && math.Abs(f) <= maxZigzagInt {
			i := int64(f)
			dst = append(dst, valZigzag)
			return binary.AppendUvarint(dst, uint64(i<<1)^uint64(i>>63))
		}
		dst = append(dst, valFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	case core.KindBool:
		if v.Bool {
			return append(dst, valTrue)
		}
		return append(dst, valFalse)
	default:
		return append(dst, valNull)
	}
}

// Encode serializes p as a self-contained binary plan blob. The blob is
// deterministic: encoding the same plan always yields the same bytes, and
// encode→decode→encode is byte-identical.
func Encode(p *core.Plan) ([]byte, error) {
	return AppendEncode(nil, p)
}

// AppendEncode appends p's blob to dst and returns the extended slice,
// letting callers reuse one buffer across many encodes.
func AppendEncode(dst []byte, p *core.Plan) ([]byte, error) {
	var e encoder
	rec, err := e.appendPlan(nil, p)
	if err != nil {
		return dst, err
	}
	dst = append(dst, planMagic...)
	dst = append(dst, Version)
	dst = e.appendTable(dst)
	return append(dst, rec...), nil
}
