package codec

import (
	"io"
	"sync"
	"testing"

	"uplan/internal/bench"
	"uplan/internal/convert"
	"uplan/internal/core"
)

// corpusPlans converts the full nine-dialect benchmark corpus once per
// test binary: the 264 unified plans the codec benchmarks pack and decode.
var corpusPlans = sync.OnceValues(func() ([]*core.Plan, error) {
	recs, err := bench.Corpus(42)
	if err != nil {
		return nil, err
	}
	plans := make([]*core.Plan, 0, len(recs))
	for _, rec := range recs {
		c, err := convert.Cached(rec.Dialect)
		if err != nil {
			return nil, err
		}
		p, err := c.Convert(rec.Serialized)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
})

// packedCorpus packs the benchmark corpus into one in-memory corpus blob.
func packedCorpus(tb testing.TB) ([]byte, []*core.Plan) {
	tb.Helper()
	plans, err := corpusPlans()
	if err != nil {
		tb.Fatal(err)
	}
	var buf writerBuffer
	cw := NewCorpusWriter(&buf)
	for _, p := range plans {
		if err := cw.Add(p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.b, plans
}

// writerBuffer is a minimal io.Writer; bytes.Buffer would work, but this
// keeps the packed slice without the Buffer's read-cursor semantics.
type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// decodeAll runs one full pass over the packed corpus, resetting ar
// before each plan (the reuse lifecycle).
func decodeAll(tb testing.TB, r *CorpusReader, ar *core.PlanArena) int {
	n := 0
	for {
		ar.Reset()
		_, err := r.Next(ar)
		if err == io.EOF {
			r.Rewind()
			return n
		}
		if err != nil {
			tb.Fatal(err)
		}
		n++
	}
}

// TestCodecDecodeAllocBudget enforces the acceptance budget directly:
// iterating the packed 264-record corpus with a reused arena must stay at
// or under 9 allocations per decoded plan.
func TestCodecDecodeAllocBudget(t *testing.T) {
	blob, plans := packedCorpus(t)
	r, err := NewCorpusReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	ar := core.NewPlanArena()
	decodeAll(t, r, ar) // warm slabs and intern table
	const runs = 10
	avg := testing.AllocsPerRun(runs, func() {
		if n := decodeAll(t, r, ar); n != len(plans) {
			t.Fatalf("decoded %d plans, want %d", n, len(plans))
		}
	})
	perPlan := avg / float64(len(plans))
	t.Logf("reused-arena decode: %.2f allocs/plan over %d plans", perPlan, len(plans))
	if perPlan > 9 {
		t.Fatalf("reused-arena decode: %.2f allocs/plan, budget 9", perPlan)
	}
}

// BenchmarkCodecDecode measures corpus decode throughput. The reuse
// sub-benchmark is the acceptance configuration (one arena, Reset per
// plan, table parsed once per file); oneshot pays a fresh arena per plan
// the way a cold caller would. plans/s is reported for direct comparison
// with BenchmarkDecodeJSON/stream at the same HEAD.
func BenchmarkCodecDecode(b *testing.B) {
	blob, plans := packedCorpus(b)
	b.Run("reuse", func(b *testing.B) {
		r, err := NewCorpusReader(blob)
		if err != nil {
			b.Fatal(err)
		}
		ar := core.NewPlanArena()
		decodeAll(b, r, ar)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			decodeAll(b, r, ar)
		}
		b.StopTimer()
		perPlan := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(plans))
		b.ReportMetric(1e9/perPlan, "plans/s")
		b.ReportMetric(perPlan, "ns/plan")
	})
	b.Run("oneshot", func(b *testing.B) {
		r, err := NewCorpusReader(blob)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				_, err := r.Next(core.NewPlanArena())
				if err == io.EOF {
					r.Rewind()
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		perPlan := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(plans))
		b.ReportMetric(1e9/perPlan, "plans/s")
		b.ReportMetric(perPlan, "ns/plan")
	})
}

// BenchmarkCodecEncode measures single-plan blob encoding (the serve wire
// path) and corpus packing (the store/tooling path) over the full corpus.
func BenchmarkCodecEncode(b *testing.B) {
	plans, err := corpusPlans()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("blob", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range plans {
				if _, err := Encode(p); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		perPlan := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(plans))
		b.ReportMetric(perPlan, "ns/plan")
	})
	b.Run("corpus", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf writerBuffer
			cw := NewCorpusWriter(&buf)
			for _, p := range plans {
				if err := cw.Add(p); err != nil {
					b.Fatal(err)
				}
			}
			if err := cw.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		perPlan := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(plans))
		b.ReportMetric(perPlan, "ns/plan")
	})
}
