package convert

import (
	"fmt"
	"strings"

	"uplan/internal/core"
)

// Text-format parsers: PostgreSQL EXPLAIN text, MySQL TREE, TiDB table,
// SQLite EXPLAIN QUERY PLAN, SparkSQL physical plan, Neo4j plan table, and
// InfluxDB's property list.
//
// All of them are arena-native: ConvertIn builds nodes, property lists,
// and child lists inside the caller's core.PlanArena (nil falls back to
// the heap), walks the input with the index-based line iterator, and
// slices every field — operator names, object names, property values —
// straight out of the input string without copying. Convert routes
// through a pooled arena plus a compact detach (see convertPooled), so
// even the convenience path batches its allocations.

// -------------------------------------------------------------- PostgreSQL

type postgresConverter struct{ reg *core.Registry }

func (c *postgresConverter) Dialect() string { return "postgresql" }

func (c *postgresConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *postgresConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	t := strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(t, "[") || strings.HasPrefix(t, "{"):
		return c.convertJSON(s, ar)
	case strings.HasPrefix(t, "<explain"):
		return c.convertXML(s, ar)
	case strings.HasPrefix(t, "- Plan:"):
		return c.convertYAML(s, ar)
	}
	return c.convertText(s, ar)
}

// convertText parses the EXPLAIN text format: node lines carry a
// "(cost=…)" annotation; "->" arrows encode nesting (6 columns per level);
// property lines sit under their node; plan lines trail at column 0.
//uplan:hotpath
func (c *postgresConverter) convertText(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "postgresql"}
	type frame struct {
		node *core.Node
		col  int // column of the operator name
	}
	stack := make([]frame, 0, 8)
	sawTree := false
	for it := newLineIter(s); it.next(); {
		raw := it.line
		if strings.TrimSpace(raw) == "" {
			continue
		}
		arrow := strings.Index(raw, "->")
		costIdx := strings.Index(raw, "(cost=")
		isNode := costIdx >= 0 && (arrow >= 0 || indentDepth(raw) == 0)
		switch {
		case isNode:
			nameCol := 0
			text := raw
			if arrow >= 0 {
				nameCol = arrow + 4
				text = raw[arrow+2:]
			}
			node, err := c.parseNodeLine(strings.TrimSpace(text), ar)
			if err != nil {
				return nil, fmt.Errorf("convert: line %d: %w", it.n, err)
			}
			for len(stack) > 0 && stack[len(stack)-1].col >= nameCol {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				if plan.Root != nil {
					return nil, fmt.Errorf("convert: line %d: multiple root operators", it.n)
				}
				plan.Root = node
			} else {
				ar.AddChildIn(stack[len(stack)-1].node, node)
			}
			stack = append(stack, frame{node: node, col: nameCol})
			sawTree = true
		case indentDepth(raw) == 0:
			// Plan-level property ("Planning Time: 0.124 ms").
			key, val, ok := splitKV(raw)
			if !ok {
				return nil, fmt.Errorf("convert: line %d: unparseable plan line %q", it.n, raw)
			}
			addPlanProp(c.reg, "postgresql", ar, plan, key, strings.TrimSuffix(val, " ms"))
		default:
			// Node property line; belongs to the deepest open node.
			if len(stack) == 0 {
				return nil, fmt.Errorf("convert: line %d: property before any operator", it.n)
			}
			key, val, ok := splitKV(raw)
			if !ok {
				continue // tolerate free-form annotation lines
			}
			addProp(c.reg, "postgresql", ar, stack[len(stack)-1].node, key, val)
		}
	}
	if !sawTree && plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: no PostgreSQL plan found in input")
	}
	return plan, nil
}

// parseNodeLine parses `Name on obj  (cost=a..b rows=N width=W) [actual…]`.
//uplan:hotpath
func (c *postgresConverter) parseNodeLine(line string, ar *core.PlanArena) (*core.Node, error) {
	costIdx := strings.Index(line, "(cost=")
	if costIdx < 0 {
		return nil, fmt.Errorf("operator line without cost annotation: %q", line)
	}
	title := strings.TrimSpace(line[:costIdx])
	ann := line[costIdx:]
	name := title
	object := ""
	if i := strings.Index(title, " on "); i >= 0 {
		name = title[:i]
		object = title[i+4:]
	}
	op := c.reg.ResolveOperation("postgresql", name)
	node := ar.NewNodeIn(op.Category, op.Name)
	if object != "" {
		addTypedProp(ar, node, core.Configuration, "name object", core.Str(object))
	}
	// Parse cost annotation pieces.
	if se, te, ok := parseCostRange(ann, "cost="); ok {
		addTypedProp(ar, node, core.Cost, "startup cost", core.Num(se))
		addTypedProp(ar, node, core.Cost, "total cost", core.Num(te))
	}
	if v, ok := parseKVNum(ann, "rows=", false); ok {
		addTypedProp(ar, node, core.Cardinality, "estimated rows", core.Num(v))
	}
	if v, ok := parseKVNum(ann, "width=", false); ok {
		addTypedProp(ar, node, core.Cardinality, "estimated width", core.Num(v))
	}
	if _, at, ok := parseCostRange(ann, "actual time="); ok {
		addTypedProp(ar, node, core.Status, "actual time", core.Num(at))
		if v, ok := parseKVNum(ann, "rows=", true); ok {
			addTypedProp(ar, node, core.Cardinality, "actual rows", core.Num(v))
		}
	}
	return node, nil
}

func splitKV(raw string) (string, string, bool) {
	t := strings.TrimSpace(raw)
	i := strings.Index(t, ": ")
	if i < 0 {
		if strings.HasSuffix(t, ":") {
			return strings.TrimSuffix(t, ":"), "", true
		}
		return "", "", false
	}
	return t[:i], t[i+2:], true
}

// parseCostRange extracts "key=a..b" returning both numbers; the range is
// split in place (no intermediate slice).
func parseCostRange(s, key string) (float64, float64, bool) {
	i := strings.Index(s, key)
	if i < 0 {
		return 0, 0, false
	}
	rest := s[i+len(key):]
	end := strings.IndexAny(rest, " )")
	if end < 0 {
		end = len(rest)
	}
	rest = rest[:end]
	dots := strings.Index(rest, "..")
	if dots < 0 {
		return 0, 0, false
	}
	a := parseScalar(rest[:dots])
	b := parseScalar(rest[dots+2:])
	if a.Kind != core.KindNumber || b.Kind != core.KindNumber {
		return 0, 0, false
	}
	return a.Num, b.Num, true
}

// parseKVNum extracts "key=N"; when last is true the final occurrence is
// used (the actual-rows in the second annotation group).
func parseKVNum(s, key string, last bool) (float64, bool) {
	i := strings.Index(s, key)
	if last {
		i = strings.LastIndex(s, key)
	}
	if i < 0 {
		return 0, false
	}
	rest := s[i+len(key):]
	end := strings.IndexAny(rest, " )")
	if end < 0 {
		end = len(rest)
	}
	v := parseScalar(rest[:end])
	if v.Kind != core.KindNumber {
		return 0, false
	}
	return v.Num, true
}

// ------------------------------------------------------------------ MySQL

type mysqlConverter struct{ reg *core.Registry }

func (c *mysqlConverter) Dialect() string { return "mysql" }

// mysqlOperators lists MySQL TREE operator prefixes, longest first, so
// titles parse deterministically.
var mysqlOperators = []string{
	"Aggregate using temporary table", "Rows fetched before execution",
	"Nested loop inner join", "Nested loop left join", "Intersect materialize",
	"Except materialize", "Union materialize", "Covering index lookup",
	"Covering index scan", "Single-row index lookup", "Index range scan",
	"Index lookup", "Index scan", "Group aggregate", "Inner hash join",
	"Left hash join", "Table scan", "Union all", "Deduplicate", "Aggregate",
	"Filter", "Sort", "Limit", "Insert", "Update", "Delete", "Materialize",
}

func (c *mysqlConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *mysqlConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "{") {
		return c.convertJSON(s, ar)
	}
	if strings.HasPrefix(t, "+--") || strings.HasPrefix(t, "| id") {
		return c.convertTable(s, ar)
	}
	return c.convertTree(s, ar)
}

// convertTree parses EXPLAIN FORMAT=TREE: "-> " lines, 4 spaces/level.
//uplan:hotpath
func (c *mysqlConverter) convertTree(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "mysql"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for it := newLineIter(s); it.next(); {
		raw := it.line
		if strings.TrimSpace(raw) == "" {
			continue
		}
		arrow := strings.Index(raw, "-> ")
		if arrow < 0 {
			continue
		}
		depth := arrow / 4
		title := strings.TrimSpace(raw[arrow+3:])
		node := c.parseTreeLine(title, ar)
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: line %d: multiple MySQL roots", it.n)
			}
			plan.Root = node
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: no MySQL TREE plan found in input")
	}
	return plan, nil
}

func (c *mysqlConverter) parseTreeLine(title string, ar *core.PlanArena) *core.Node {
	node := ar.NewNodeIn("", "")
	c.parseTreeLineInto(node, title, ar)
	return node
}

// parseTreeLineInto parses a TREE operator title into an existing node —
// the JSON decoder's "operation" strings reuse this without building (and
// discarding) a second arena node per operator.
//uplan:hotpath
func (c *mysqlConverter) parseTreeLineInto(node *core.Node, title string, ar *core.PlanArena) {
	// Split off the cost/actual annotations.
	detailEnd := len(title)
	if i := strings.Index(title, "  (cost="); i >= 0 {
		detailEnd = i
	} else if i := strings.Index(title, " (cost="); i >= 0 {
		detailEnd = i
	}
	head := strings.TrimSpace(title[:detailEnd])
	ann := title[detailEnd:]

	name := head
	rest := ""
	for _, opName := range mysqlOperators {
		if strings.HasPrefix(head, opName) {
			name = opName
			rest = strings.TrimSpace(head[len(opName):])
			break
		}
	}
	node.Op = c.reg.ResolveOperation("mysql", name)
	rest = strings.TrimPrefix(rest, ":")
	rest = strings.TrimSpace(rest)
	if i := strings.Index(rest, " using "); i >= 0 {
		addTypedProp(ar, node, core.Configuration, "access object", core.Str(strings.TrimSpace(rest[i+7:])))
		rest = strings.TrimSpace(rest[:i])
	}
	if strings.HasPrefix(rest, "on ") {
		addTypedProp(ar, node, core.Configuration, "name object", core.Str(strings.TrimPrefix(rest, "on ")))
	} else if rest != "" {
		name, cat := c.reg.ResolveProperty("mysql", "attached_condition")
		addTypedProp(ar, node, cat, name, core.Str(rest))
	}
	if v, ok := parseKVNum(ann, "cost=", false); ok {
		addTypedProp(ar, node, core.Cost, "total cost", core.Num(v))
	}
	if v, ok := parseKVNum(ann, "rows=", false); ok {
		addTypedProp(ar, node, core.Cardinality, "estimated rows", core.Num(v))
	}
	if i := strings.Index(ann, "actual time="); i >= 0 {
		if v, ok := parseKVNum(ann[i:], "rows=", false); ok {
			addTypedProp(ar, node, core.Cardinality, "actual rows", core.Num(v))
		}
	}
}

// convertTable parses the classic tabular EXPLAIN: each row is one table
// access; the result is a left-deep chain.
//uplan:hotpath
func (c *mysqlConverter) convertTable(s string, ar *core.PlanArena) (*core.Plan, error) {
	rows, header, err := parseASCIITable(s)
	if err != nil {
		return nil, err
	}
	col := func(name string) int {
		for i, h := range header {
			if strings.EqualFold(h, name) {
				return i
			}
		}
		return -1
	}
	tableIdx, typeIdx, keyIdx, rowsIdx, extraIdx :=
		col("table"), col("type"), col("key"), col("rows"), col("Extra")
	plan := &core.Plan{Source: "mysql"}
	var prev *core.Node
	for _, r := range rows {
		opName := "Table scan"
		if typeIdx >= 0 {
			switch strings.ToLower(r[typeIdx]) {
			case "ref", "eq_ref", "const":
				opName = "Index lookup"
			case "range":
				opName = "Index range scan"
			case "index":
				opName = "Covering index scan"
			}
		}
		op := c.reg.ResolveOperation("mysql", opName)
		node := ar.NewNodeIn(op.Category, op.Name)
		if tableIdx >= 0 && r[tableIdx] != "" {
			addTypedProp(ar, node, core.Configuration, "name object", core.Str(r[tableIdx]))
		}
		if keyIdx >= 0 && r[keyIdx] != "" && r[keyIdx] != "NULL" {
			addTypedProp(ar, node, core.Configuration, "access object", core.Str(r[keyIdx]))
		}
		if rowsIdx >= 0 && r[rowsIdx] != "" {
			addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(r[rowsIdx]))
		}
		if extraIdx >= 0 && r[extraIdx] != "" && r[extraIdx] != "NULL" {
			addTypedProp(ar, node, core.Configuration, "extra", core.Str(r[extraIdx]))
		}
		if plan.Root == nil {
			plan.Root = node
		} else {
			ar.AddChildIn(prev, node)
		}
		prev = node
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: empty MySQL tabular plan")
	}
	return plan, nil
}

// parseAlignedTable parses a +---+ bordered table by column offsets taken
// from the border line, preserving leading whitespace inside cells (needed
// for tree-art columns). Cells are right-trimmed only.
func parseAlignedTable(s string) ([][]string, []string, error) {
	var spans [][2]int
	var header []string
	var rows [][]string
	for it := newLineIter(s); it.next(); {
		line := strings.TrimRight(it.line, " \r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "+") && spans == nil {
			// Border line: derive column spans between '+' markers.
			start := 0
			for i := 1; i < len(line); i++ {
				if line[i] == '+' {
					spans = append(spans, [2]int{start + 1, i})
					start = i
				}
			}
			continue
		}
		if spans == nil || !strings.HasPrefix(line, "|") {
			continue
		}
		if strings.HasPrefix(line, "+") {
			continue
		}
		cells := make([]string, 0, len(spans))
		for _, sp := range spans {
			lo, hi := sp[0], sp[1]
			if lo >= len(line) {
				cells = append(cells, "")
				continue
			}
			if hi > len(line) {
				hi = len(line)
			}
			cell := strings.TrimRight(line[lo:hi], " ")
			// Drop the single leading padding space the renderer adds.
			cell = strings.TrimPrefix(cell, " ")
			cells = append(cells, cell)
		}
		if header == nil {
			for i := range cells {
				cells[i] = strings.TrimSpace(cells[i])
			}
			header = cells
			continue
		}
		rows = append(rows, cells)
	}
	if header == nil {
		return nil, nil, fmt.Errorf("convert: no aligned table found in input")
	}
	return rows, header, nil
}

// parseASCIITable parses a +---+ bordered table into header + rows.
func parseASCIITable(s string) ([][]string, []string, error) {
	var header []string
	var rows [][]string
	for it := newLineIter(s); it.next(); {
		line := strings.TrimSpace(it.line)
		if line == "" || strings.HasPrefix(line, "+") {
			continue
		}
		if !strings.HasPrefix(line, "|") {
			continue
		}
		// Walk the "|"-separated cells in place; the segment after the last
		// "|" (usually empty) is dropped, as strings.Split-and-trim did.
		var cells []string
		if header != nil {
			cells = make([]string, 0, len(header))
		}
		for rest := line[1:]; ; {
			i := strings.IndexByte(rest, '|')
			if i < 0 {
				break
			}
			cells = append(cells, strings.TrimSpace(rest[:i]))
			rest = rest[i+1:]
		}
		if header == nil {
			header = cells
			continue
		}
		rows = append(rows, cells)
	}
	if header == nil {
		return nil, nil, fmt.Errorf("convert: no table found in input")
	}
	return rows, header, nil
}

// ------------------------------------------------------------------- TiDB

type tidbConverter struct{ reg *core.Registry }

func (c *tidbConverter) Dialect() string { return "tidb" }

func (c *tidbConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *tidbConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "[") || strings.HasPrefix(t, "{") {
		return c.convertJSON(s, ar)
	}
	return c.convertTable(s, ar)
}

//uplan:hotpath
func (c *tidbConverter) convertTable(s string, ar *core.PlanArena) (*core.Plan, error) {
	rows, header, err := parseAlignedTable(s)
	if err != nil {
		return nil, err
	}
	col := func(name string) int {
		for i, h := range header {
			if strings.EqualFold(h, name) {
				return i
			}
		}
		return -1
	}
	idIdx, estIdx, taskIdx, objIdx, infoIdx :=
		col("id"), col("estRows"), col("task"), col("access object"), col("operator info")
	if idIdx < 0 {
		return nil, fmt.Errorf("convert: TiDB table lacks id column")
	}
	plan := &core.Plan{Source: "tidb"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for _, r := range rows {
		id := r[idIdx]
		depth := 0
		namePart := strings.TrimSpace(id)
		if i := strings.IndexAny(id, "└├"); i >= 0 {
			// Tree art: two display columns ("  " or "│ ") per level before
			// the connector.
			prefix := id[:i]
			depth = len([]rune(prefix))/2 + 1
			namePart = strings.TrimLeft(id[i:], "└├─ ")
		}
		base, suffix := stripOperatorSuffix(strings.TrimSpace(namePart))
		op := c.reg.ResolveOperation("tidb", base)
		node := ar.NewNodeIn(op.Category, op.Name)
		if suffix != "" {
			addTypedProp(ar, node, core.Status, "operator id", core.Str(suffix))
		}
		if estIdx >= 0 && r[estIdx] != "" {
			addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(r[estIdx]))
		}
		if taskIdx >= 0 && r[taskIdx] != "" {
			name, cat := c.reg.ResolveProperty("tidb", "task")
			addTypedProp(ar, node, cat, name, core.Str(r[taskIdx]))
		}
		if objIdx >= 0 && r[objIdx] != "" {
			addTypedProp(ar, node, core.Configuration, "access object", core.Str(r[objIdx]))
		}
		if infoIdx >= 0 && r[infoIdx] != "" {
			name, cat := c.reg.ResolveProperty("tidb", "operator info")
			addTypedProp(ar, node, cat, name, core.Str(r[infoIdx]))
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: multiple TiDB roots")
			}
			plan.Root = node
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: empty TiDB plan")
	}
	plan.Root = foldTiDBSelections(plan.Root)
	return plan, nil
}

// foldTiDBSelections implements the paper's special case: TiDB's Selection
// represents the condition its child's output satisfies, so it is deemed a
// property, not an operation. Each Selection node is replaced by its child
// with the condition attached as a Configuration property.
func foldTiDBSelections(n *core.Node) *core.Node {
	for i, ch := range n.Children {
		n.Children[i] = foldTiDBSelections(ch)
	}
	if n.Op.Name == "Filter" && len(n.Children) == 1 {
		child := n.Children[0]
		for _, pr := range n.Properties {
			if pr.Category == core.Configuration {
				child.Properties = append(child.Properties, core.Property{
					Category: core.Configuration, Name: "filter", Value: pr.Value,
				})
			}
		}
		return child
	}
	return n
}

// ------------------------------------------------------------------ SQLite

type sqliteConverter struct{ reg *core.Registry }

func (c *sqliteConverter) Dialect() string { return "sqlite" }

var sqliteOperators = []string{
	"USE TEMP B-TREE FOR GROUP BY", "USE TEMP B-TREE FOR ORDER BY",
	"USE TEMP B-TREE FOR DISTINCT", "LEFT-MOST SUBQUERY", "COMPOUND QUERY",
	"UNION ALL USING TEMP B-TREE", "UNION USING TEMP B-TREE",
	"INTERSECT USING TEMP B-TREE", "EXCEPT USING TEMP B-TREE",
	"CORRELATED SCALAR SUBQUERY", "CO-ROUTINE", "MATERIALIZE",
	"SEARCH", "SCAN",
}

func (c *sqliteConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

//uplan:hotpath
func (c *sqliteConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "sqlite"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	// The virtual root only collects top-level steps; it is never part of
	// the returned tree, so it lives outside the arena.
	virtualRoot := &core.Node{}
	for it := newLineIter(s); it.next(); {
		line := strings.TrimRight(it.line, " ")
		if strings.TrimSpace(line) == "" || strings.TrimSpace(line) == "QUERY PLAN" {
			continue
		}
		// Tree art is built from three-character groups: "   " or "|  "
		// continuations followed by a "|--" or "`--" connector.
		depth := 0
		body := line
		pos := 0
		for {
			if strings.HasPrefix(line[pos:], "|--") || strings.HasPrefix(line[pos:], "`--") {
				depth = pos/3 + 1
				body = strings.TrimSpace(line[pos+3:])
				break
			}
			if strings.HasPrefix(line[pos:], "|  ") || strings.HasPrefix(line[pos:], "   ") {
				pos += 3
				continue
			}
			body = strings.TrimSpace(line)
			break
		}
		node := c.parseLine(body, ar)
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			virtualRoot.Children = append(virtualRoot.Children, node)
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	switch len(virtualRoot.Children) {
	case 0:
		return nil, fmt.Errorf("convert: empty SQLite plan")
	case 1:
		plan.Root = virtualRoot.Children[0]
	default:
		// Multiple top-level steps: SQLite's EQP is a list; wrap them under
		// the first step to preserve order within one tree.
		plan.Root = virtualRoot.Children[0]
		for _, extra := range virtualRoot.Children[1:] {
			ar.AddChildIn(plan.Root, extra)
		}
	}
	return plan, nil
}

//uplan:hotpath
func (c *sqliteConverter) parseLine(body string, ar *core.PlanArena) *core.Node {
	name := body
	rest := ""
	for _, opName := range sqliteOperators {
		if strings.HasPrefix(body, opName) {
			name = opName
			rest = strings.TrimSpace(body[len(opName):])
			break
		}
	}
	// Set operations carry a "USING TEMP B-TREE" method suffix; the
	// operation is the set operator itself.
	method := ""
	for _, setOp := range []string{"UNION ALL", "UNION", "INTERSECT", "EXCEPT"} {
		if name == setOp+" USING TEMP B-TREE" {
			name = setOp
			method = "TEMP B-TREE"
			break
		}
	}
	op := c.reg.ResolveOperation("sqlite", name)
	node := ar.NewNodeIn(op.Category, op.Name)
	if method != "" {
		addTypedProp(ar, node, core.Configuration, "method", core.Str(method))
	}
	if rest == "" {
		return node
	}
	// "t1 USING AUTOMATIC COVERING INDEX (c0=?)" / "t0" / "t2 USING INDEX i".
	if i := strings.Index(rest, " USING "); i >= 0 {
		addTypedProp(ar, node, core.Configuration, "name object", core.Str(rest[:i]))
		using := rest[i+7:]
		key := "USING INDEX"
		if strings.Contains(using, "COVERING INDEX") {
			key = "USING COVERING INDEX"
		}
		name, cat := c.reg.ResolveProperty("sqlite", key)
		addTypedProp(ar, node, cat, name, core.Str(using))
	} else {
		addTypedProp(ar, node, core.Configuration, "name object", core.Str(rest))
	}
	return node
}

// ---------------------------------------------------------------- SparkSQL

type sparkConverter struct{ reg *core.Registry }

func (c *sparkConverter) Dialect() string { return "sparksql" }

func (c *sparkConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

//uplan:hotpath
func (c *sparkConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "sparksql"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for it := newLineIter(s); it.next(); {
		line := strings.TrimRight(it.line, " ")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "== ") {
			continue
		}
		depth := 0
		body := line
		if i := strings.Index(line, "+- "); i >= 0 {
			depth = i/3 + 1
			body = line[i+3:]
		}
		body = strings.TrimSpace(body)
		name := body
		args := ""
		if i := strings.IndexAny(body, "( ["); i > 0 {
			name = strings.TrimSpace(body[:i])
			args = strings.TrimSpace(body[i:])
		}
		// "WholeStageCodegen (1)" keeps its stage id as a status property.
		op := c.reg.ResolveOperation("sparksql", name)
		node := ar.NewNodeIn(op.Category, op.Name)
		if args != "" {
			addTypedProp(ar, node, core.Configuration, "args", core.Str(args))
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: multiple Spark roots")
			}
			plan.Root = node
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: no Spark physical plan found")
	}
	return plan, nil
}

// ------------------------------------------------------------------- Neo4j

type neo4jConverter struct{ reg *core.Registry }

func (c *neo4jConverter) Dialect() string { return "neo4j" }

func (c *neo4jConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *neo4jConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "{") {
		return c.convertJSON(s, ar)
	}
	return c.convertTable(s, ar)
}

func (c *neo4jConverter) convertTable(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "neo4j"}
	for it := newLineIter(s); it.next(); {
		line := strings.TrimSpace(it.line)
		switch {
		case strings.HasPrefix(line, "Planner "):
			addPlanProp(c.reg, "neo4j", ar, plan, "planner", strings.TrimPrefix(line, "Planner "))
		case strings.HasPrefix(line, "Runtime version "):
			addPlanProp(c.reg, "neo4j", ar, plan, "runtime version", strings.TrimPrefix(line, "Runtime version "))
		case strings.HasPrefix(line, "Total database accesses:"):
			rest := strings.TrimPrefix(line, "Total database accesses:")
			first := rest
			if i := strings.IndexByte(rest, ','); i >= 0 {
				first = rest[:i]
				mem := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), "total allocated memory:"))
				addPlanProp(c.reg, "neo4j", ar, plan, "DbHits", strings.TrimSpace(first))
				addPlanProp(c.reg, "neo4j", ar, plan, "Memory", mem)
			} else {
				addPlanProp(c.reg, "neo4j", ar, plan, "DbHits", strings.TrimSpace(first))
			}
		}
	}
	// The plan table itself parses straight from the input: aligned-table
	// parsing skips the prefix/summary lines above on its own, so no
	// filtered copy of the table lines is built.
	rows, header, err := parseAlignedTable(s)
	if err != nil {
		if len(plan.Properties) > 0 {
			return plan, nil
		}
		return nil, fmt.Errorf("convert: no Neo4j plan found")
	}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for _, cells := range rows {
		opCell := cells[0]
		plus := strings.Index(opCell, "+")
		if plus < 0 {
			continue
		}
		// Nesting is encoded as "| " repetitions before the "+".
		depth := strings.Count(opCell[:plus], "|")
		name := strings.TrimSpace(opCell[plus+1:])
		op := c.reg.ResolveOperation("neo4j", name)
		node := ar.NewNodeIn(op.Category, op.Name)
		for i := 1; i < len(cells) && i < len(header); i++ {
			val := strings.TrimSpace(cells[i])
			if val == "" {
				continue
			}
			key := header[i]
			if strings.EqualFold(key, "Estimated Rows") {
				addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(val))
				continue
			}
			addProp(c.reg, "neo4j", ar, node, key, val)
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root == nil {
				plan.Root = node
			} else {
				ar.AddChildIn(plan.Root, node)
			}
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: no Neo4j plan found")
	}
	return plan, nil
}

// ---------------------------------------------------------------- InfluxDB

type influxConverter struct{ reg *core.Registry }

func (c *influxConverter) Dialect() string { return "influxdb" }

func (c *influxConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *influxConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "influxdb"}
	for it := newLineIter(s); it.next(); {
		line := strings.TrimSpace(it.line)
		if line == "" {
			continue
		}
		key, val, ok := splitKV(line)
		if !ok {
			continue
		}
		addPlanProp(c.reg, "influxdb", ar, plan, key, val)
	}
	if len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: no InfluxDB plan properties found")
	}
	return plan, nil
}
