package convert

import (
	"encoding/json"
	"fmt"
	"strings"

	"uplan/internal/core"
)

// This file retains the map[string]any-based JSON decoders the structured
// converters used before the streaming jsonScan port. They are kept out
// of the hot path and serve one purpose: LegacyConvert is the reference
// implementation the differential tests compare the streaming decoders
// against, plan for plan, across the full benchmark corpus.

// decodeJSON decodes one JSON document with number literals preserved.
// It reads the input in place (strings.NewReader) instead of copying it
// into a fresh []byte first.
func decodeJSON(s string, into any) error {
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	return dec.Decode(into)
}

// scalarFromJSON converts a decoded JSON value to a core.Value. Composite
// values (objects, arrays) are serialized once, directly into the string
// builder backing the returned value — not Marshal-ed to a []byte that is
// then copied into a string a second time.
func scalarFromJSON(v any) core.Value {
	switch t := v.(type) {
	case nil:
		return core.Null()
	case string:
		return parseScalar(t)
	case bool:
		return core.BoolVal(t)
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return core.Str(t.String())
		}
		return core.Num(f)
	default:
		var b strings.Builder
		if err := json.NewEncoder(&b).Encode(t); err != nil {
			return core.Null()
		}
		return core.Str(strings.TrimSuffix(b.String(), "\n"))
	}
}

// LegacyConvert converts a serialized plan through the retained map-based
// JSON decoders when the input is one of the five streaming-ported JSON
// formats, and through the regular parsers in plain heap mode (nil arena)
// otherwise. Differential tests assert that its output matches the
// streaming, arena-backed decoders' canonically, so neither the scanner
// port nor the arena memory model can silently change semantics. The heap
// fallback matters: Convert itself now routes through pooled arenas, so
// going through it here would compare the arena path against itself —
// ConvertIn with a nil arena keeps construction (one heap object per
// node/property, plain appends) independent of the slab allocator for the
// text, table, XML, and YAML formats too.
func LegacyConvert(dialect, serialized string) (*core.Plan, error) {
	conv, err := Cached(dialect)
	if err != nil {
		return nil, err
	}
	t := strings.TrimSpace(serialized)
	switch c := conv.(type) {
	case *postgresConverter:
		if strings.HasPrefix(t, "[") || strings.HasPrefix(t, "{") {
			return c.legacyJSON(serialized)
		}
	case *mysqlConverter:
		if strings.HasPrefix(t, "{") {
			return c.legacyJSON(serialized)
		}
	case *tidbConverter:
		if strings.HasPrefix(t, "[") || strings.HasPrefix(t, "{") {
			return c.legacyJSON(serialized)
		}
	case *mongoConverter:
		return c.legacyJSON(serialized)
	case *neo4jConverter:
		if strings.HasPrefix(t, "{") {
			return c.legacyJSON(serialized)
		}
	}
	if ac, ok := conv.(ArenaConverter); ok {
		return ac.ConvertIn(serialized, nil) // heap-built reference plan
	}
	return conv.Convert(serialized)
}

// ------------------------------------------------------- PostgreSQL (JSON)

func (c *postgresConverter) legacyJSON(s string) (*core.Plan, error) {
	var doc any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: postgres json: %w", err)
	}
	obj, ok := doc.(map[string]any)
	if !ok {
		arr, isArr := doc.([]any)
		if !isArr || len(arr) == 0 {
			return nil, fmt.Errorf("convert: postgres json: unexpected top-level shape")
		}
		obj, ok = arr[0].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("convert: postgres json: unexpected array element")
		}
	}
	plan := &core.Plan{Source: "postgresql"}
	for k, v := range obj {
		if k == "Plan" {
			continue
		}
		name, cat := c.reg.ResolveProperty("postgresql", k)
		plan.Properties = append(plan.Properties, core.Property{
			Category: cat, Name: name, Value: scalarFromJSON(v),
		})
	}
	if rawPlan, ok := obj["Plan"].(map[string]any); ok {
		plan.Root = c.legacyJSONNode(rawPlan)
	}
	return plan, nil
}

func (c *postgresConverter) legacyJSONNode(m map[string]any) *core.Node {
	name, _ := m["Node Type"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("postgresql", name)}
	for k, v := range m {
		switch k {
		case "Node Type", "Plans", "Parent Relationship":
			if k == "Parent Relationship" {
				addTypedProp(nil, node, core.Configuration, "parent relationship", scalarFromJSON(v))
			}
			continue
		case "Startup Cost":
			addTypedProp(nil, node, core.Cost, "startup cost", scalarFromJSON(v))
		case "Total Cost":
			addTypedProp(nil, node, core.Cost, "total cost", scalarFromJSON(v))
		case "Plan Rows":
			addTypedProp(nil, node, core.Cardinality, "estimated rows", scalarFromJSON(v))
		case "Plan Width":
			addTypedProp(nil, node, core.Cardinality, "estimated width", scalarFromJSON(v))
		case "Actual Rows":
			addTypedProp(nil, node, core.Cardinality, "actual rows", scalarFromJSON(v))
		case "Actual Total Time":
			addTypedProp(nil, node, core.Status, "actual time", scalarFromJSON(v))
		case "Relation Name":
			addTypedProp(nil, node, core.Configuration, "name object", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("postgresql", k)
			addTypedProp(nil, node, cat, pname, scalarFromJSON(v))
		}
	}
	if kids, ok := m["Plans"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.legacyJSONNode(km))
			}
		}
	}
	return node
}

// ------------------------------------------------------------ MySQL (JSON)

func (c *mysqlConverter) legacyJSON(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: mysql json: %w", err)
	}
	qb, ok := doc["query_block"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("convert: mysql json: missing query_block")
	}
	plan := &core.Plan{Source: "mysql"}
	if ci, ok := qb["cost_info"].(map[string]any); ok {
		if qc, ok := ci["query_cost"]; ok {
			addPlanPropTyped(nil, plan, core.Cost, "total cost", scalarFromJSON(qc))
		}
	}
	if p, ok := qb["plan"].(map[string]any); ok {
		plan.Root = c.legacyJSONNode(p)
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: mysql json: empty plan")
	}
	return plan, nil
}

func (c *mysqlConverter) legacyJSONNode(m map[string]any) *core.Node {
	opText, _ := m["operation"].(string)
	node := c.parseTreeLine(opText, nil)
	if ci, ok := m["cost_info"].(map[string]any); ok {
		for k, v := range ci {
			pname, cat := c.reg.ResolveProperty("mysql", k)
			addTypedProp(nil, node, cat, pname, scalarFromJSON(v))
		}
	}
	for k, v := range m {
		switch k {
		case "operation", "inputs", "cost_info":
			continue
		case "rows_examined_per_scan":
			addTypedProp(nil, node, core.Cardinality, "estimated rows", scalarFromJSON(v))
		case "actual_rows":
			addTypedProp(nil, node, core.Cardinality, "actual rows", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("mysql", k)
			addTypedProp(nil, node, cat, pname, scalarFromJSON(v))
		}
	}
	if kids, ok := m["inputs"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.legacyJSONNode(km))
			}
		}
	}
	return node
}

// ------------------------------------------------------------- TiDB (JSON)

type tidbJSONIn struct {
	ID           string       `json:"id"`
	EstRows      string       `json:"estRows"`
	ActRows      string       `json:"actRows"`
	TaskType     string       `json:"taskType"`
	AccessObject string       `json:"accessObject"`
	OperatorInfo string       `json:"operatorInfo"`
	SubOperators []tidbJSONIn `json:"subOperators"`
}

func (c *tidbConverter) legacyJSON(s string) (*core.Plan, error) {
	var arr []tidbJSONIn
	if err := json.Unmarshal([]byte(s), &arr); err != nil {
		// Maybe a single object.
		var one tidbJSONIn
		if err2 := json.Unmarshal([]byte(s), &one); err2 != nil {
			return nil, fmt.Errorf("convert: tidb json: %w", err)
		}
		arr = []tidbJSONIn{one}
	}
	if len(arr) == 0 {
		return nil, fmt.Errorf("convert: tidb json: empty plan")
	}
	plan := &core.Plan{Source: "tidb"}
	plan.Root = foldTiDBSelections(c.legacyJSONNode(arr[0]))
	return plan, nil
}

func (c *tidbConverter) legacyJSONNode(in tidbJSONIn) *core.Node {
	node := c.nodeFromJSONFields(tidbJSONFields{
		ID:           in.ID,
		EstRows:      in.EstRows,
		ActRows:      in.ActRows,
		TaskType:     in.TaskType,
		AccessObject: in.AccessObject,
		OperatorInfo: in.OperatorInfo,
	}, nil)
	for _, sub := range in.SubOperators {
		node.Children = append(node.Children, c.legacyJSONNode(sub))
	}
	return node
}

// ---------------------------------------------------------- MongoDB (JSON)

func (c *mongoConverter) legacyJSON(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: mongodb json: %w", err)
	}
	qp, ok := doc["queryPlanner"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("convert: mongodb json: missing queryPlanner")
	}
	plan := &core.Plan{Source: "mongodb"}
	if ns, ok := qp["namespace"]; ok {
		addPlanPropTyped(nil, plan, core.Configuration, "name object", scalarFromJSON(ns))
	}
	if wp, ok := qp["winningPlan"].(map[string]any); ok {
		plan.Root = c.legacyStage(wp)
	}
	if es, ok := doc["executionStats"].(map[string]any); ok {
		for k, v := range es {
			name, cat := c.reg.ResolveProperty("mongodb", k)
			addPlanPropTyped(nil, plan, cat, name, scalarFromJSON(v))
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: mongodb json: no winningPlan")
	}
	return plan, nil
}

func (c *mongoConverter) legacyStage(m map[string]any) *core.Node {
	name, _ := m["stage"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("mongodb", name)}
	for k, v := range m {
		switch k {
		case "stage", "inputStage", "inputStages":
			continue
		case "namespace":
			addTypedProp(nil, node, core.Configuration, "name object", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("mongodb", k)
			addTypedProp(nil, node, cat, pname, scalarFromJSON(v))
		}
	}
	if in, ok := m["inputStage"].(map[string]any); ok {
		node.Children = append(node.Children, c.legacyStage(in))
	}
	if ins, ok := m["inputStages"].([]any); ok {
		for _, kid := range ins {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.legacyStage(km))
			}
		}
	}
	return node
}

// ------------------------------------------------------------ Neo4j (JSON)

func (c *neo4jConverter) legacyJSON(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: neo4j json: %w", err)
	}
	plan := &core.Plan{Source: "neo4j"}
	for k, v := range doc {
		if k == "plan" {
			continue
		}
		name, cat := c.reg.ResolveProperty("neo4j", k)
		addPlanPropTyped(nil, plan, cat, name, scalarFromJSON(v))
	}
	if p, ok := doc["plan"].(map[string]any); ok {
		plan.Root = c.legacyJSONNode(p)
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: neo4j json: empty document")
	}
	return plan, nil
}

func (c *neo4jConverter) legacyJSONNode(m map[string]any) *core.Node {
	name, _ := m["operatorType"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("neo4j", name)}
	if args, ok := m["arguments"].(map[string]any); ok {
		for k, v := range args {
			switch k {
			case "EstimatedRows":
				addTypedProp(nil, node, core.Cardinality, "estimated rows", scalarFromJSON(v))
			case "Rows":
				addTypedProp(nil, node, core.Cardinality, "actual rows", scalarFromJSON(v))
			default:
				pname, cat := c.reg.ResolveProperty("neo4j", k)
				addTypedProp(nil, node, cat, pname, scalarFromJSON(v))
			}
		}
	}
	if kids, ok := m["children"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.legacyJSONNode(km))
			}
		}
	}
	return node
}
