package convert

import (
	"strings"
	"testing"
)

// jsonFuzzDialects are the converters whose JSON formats run on the
// streaming scanner.
var jsonFuzzDialects = []string{"postgresql", "mysql", "tidb", "mongodb", "neo4j"}

// FuzzJSONScan drives the streaming decoder and every JSON converter with
// arbitrary input. The invariant is robustness, not equivalence: no
// panic, no hang, and either a plan or an error — never both nil. (The
// seed corpus below runs as part of every regular `go test`, so CI
// exercises it on each push; `go test -fuzz=FuzzJSONScan ./internal/convert`
// explores further.) Semantic equivalence with the legacy decoders is
// asserted separately, over the full benchmark corpus, by
// TestStreamingDecoderMatchesLegacyPath at the repository root.
func FuzzJSONScan(f *testing.F) {
	seeds := []string{
		// Well-formed documents in each dialect's shape.
		`[{"Plan": {"Node Type": "Seq Scan", "Relation Name": "t0", "Startup Cost": 0.0, "Total Cost": 11.5, "Plan Rows": 50, "Plans": [{"Node Type": "Sort"}]}, "Planning Time": 0.2}]`,
		`{"query_block": {"cost_info": {"query_cost": "83"}, "plan": {"operation": "Filter: (t1.c2 = 18.5)", "cost_info": {"query_cost": "30.30"}, "inputs": [{"operation": "Table scan on t1", "rows_examined_per_scan": 1.5}]}}}`,
		`[{"id": "HashAgg_1", "estRows": "3.60", "taskType": "root", "operatorInfo": "group by:all columns", "subOperators": [{"id": "TableFullScan_5", "estRows": "10000.00", "accessObject": "table:t0"}]}]`,
		`{"ok": 1, "queryPlanner": {"namespace": "test.usertable", "winningPlan": {"stage": "FETCH", "inputStage": {"stage": "IXSCAN", "indexName": "usertable_pkey"}}}, "executionStats": {"nReturned": 7}}`,
		`{"database accesses": 204, "plan": {"operatorType": "ProduceResults", "arguments": {"EstimatedRows": 180, "Details": "(n.id)-[r]->(e.src)"}, "children": [{"operatorType": "Filter", "arguments": {"Rows": 24}}]}}`,
		// Edge shapes and hostile inputs.
		`{}`, `[]`, `[[]]`, `{"Plan": 5}`, `{"Plan": {"Plans": [3, {"Node Type": 9}]}}`,
		`{"query_block": []}`, `{"queryPlanner": {"winningPlan": {"inputStages": [{}, {"stage": "OR"}]}}}`,
		`[{"id": 17}]`, `[{"subOperators": null}]`,
		`{"a": "😀 < pair"}`, `{"a": 1e308, "b": -1e-308, "c": 123456789012345678901234567890}`,
		`{"a`, `{"a": tru}`, `[1, 2,`, `"lone string"`, `  `, "\x00", `{"a": "b` + "\x7f" + `"}`,
		strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64),
		strings.Repeat(`{"k":`, 40) + `1` + strings.Repeat(`}`, 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	convs := make([]Converter, 0, len(jsonFuzzDialects))
	for _, d := range jsonFuzzDialects {
		c, err := Cached(d)
		if err != nil {
			f.Fatal(err)
		}
		convs = append(convs, c)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// The raw scanner must consume or reject any input.
		sc := newJSONScan(s)
		if err := sc.skipValue(); err == nil {
			// A valid value must also survive scalar materialization.
			sc2 := newJSONScan(s)
			if _, err := sc2.scanValue(); err != nil {
				t.Fatalf("skipValue accepted %q but scanValue rejected it: %v", s, err)
			}
		}
		for _, c := range convs {
			plan, err := c.Convert(s)
			if err == nil && plan == nil {
				t.Fatalf("%s: nil plan and nil error for %q", c.Dialect(), s)
			}
		}
	})
}
