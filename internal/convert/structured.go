package convert

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"strings"

	"uplan/internal/core"
)

// Structured-format parsers: PostgreSQL JSON, MySQL JSON, TiDB JSON,
// MongoDB explain JSON, Neo4j JSON, and SQL Server showplan XML.

func decodeJSON(s string, into any) error {
	dec := json.NewDecoder(bytes.NewReader([]byte(s)))
	dec.UseNumber()
	return dec.Decode(into)
}

func scalarFromJSON(v any) core.Value {
	switch t := v.(type) {
	case nil:
		return core.Null()
	case string:
		return parseScalar(t)
	case bool:
		return core.BoolVal(t)
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return core.Str(t.String())
		}
		return core.Num(f)
	default:
		raw, _ := json.Marshal(v)
		return core.Str(string(raw))
	}
}

// ------------------------------------------------------- PostgreSQL (JSON)

func (c *postgresConverter) convertJSON(s string) (*core.Plan, error) {
	var doc any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: postgres json: %w", err)
	}
	// Accept both the canonical one-element array and a bare object.
	obj, ok := doc.(map[string]any)
	if !ok {
		arr, isArr := doc.([]any)
		if !isArr || len(arr) == 0 {
			return nil, fmt.Errorf("convert: postgres json: unexpected top-level shape")
		}
		obj, ok = arr[0].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("convert: postgres json: unexpected array element")
		}
	}
	plan := &core.Plan{Source: "postgresql"}
	for k, v := range obj {
		if k == "Plan" {
			continue
		}
		name, cat := c.reg.ResolveProperty("postgresql", k)
		plan.Properties = append(plan.Properties, core.Property{
			Category: cat, Name: name, Value: scalarFromJSON(v),
		})
	}
	if rawPlan, ok := obj["Plan"].(map[string]any); ok {
		plan.Root = c.jsonNode(rawPlan)
	}
	return plan, nil
}

func (c *postgresConverter) jsonNode(m map[string]any) *core.Node {
	name, _ := m["Node Type"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("postgresql", name)}
	for k, v := range m {
		switch k {
		case "Node Type", "Plans", "Parent Relationship":
			if k == "Parent Relationship" {
				addTypedProp(node, core.Configuration, "parent relationship", scalarFromJSON(v))
			}
			continue
		case "Startup Cost":
			addTypedProp(node, core.Cost, "startup cost", scalarFromJSON(v))
		case "Total Cost":
			addTypedProp(node, core.Cost, "total cost", scalarFromJSON(v))
		case "Plan Rows":
			addTypedProp(node, core.Cardinality, "estimated rows", scalarFromJSON(v))
		case "Plan Width":
			addTypedProp(node, core.Cardinality, "estimated width", scalarFromJSON(v))
		case "Actual Rows":
			addTypedProp(node, core.Cardinality, "actual rows", scalarFromJSON(v))
		case "Actual Total Time":
			addTypedProp(node, core.Status, "actual time", scalarFromJSON(v))
		case "Relation Name":
			addTypedProp(node, core.Configuration, "name object", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("postgresql", k)
			addTypedProp(node, cat, pname, scalarFromJSON(v))
		}
	}
	if kids, ok := m["Plans"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.jsonNode(km))
			}
		}
	}
	return node
}

// -------------------------------------------------------- PostgreSQL (XML)

// convertXML parses the PostgreSQL XML explain format: nested <Plan>
// elements with dash-separated tag names.
func (c *postgresConverter) convertXML(s string) (*core.Plan, error) {
	type xmlPlan struct {
		XMLName  xml.Name
		Children []xmlPlan `xml:",any"`
		Text     string    `xml:",chardata"`
	}
	var doc xmlPlan
	if err := xml.Unmarshal([]byte(s), &doc); err != nil {
		return nil, fmt.Errorf("convert: postgres xml: %w", err)
	}
	plan := &core.Plan{Source: "postgresql"}
	var buildNode func(el xmlPlan) *core.Node
	buildNode = func(el xmlPlan) *core.Node {
		node := &core.Node{}
		for _, ch := range el.Children {
			tag := strings.ReplaceAll(ch.XMLName.Local, "-", " ")
			val := strings.TrimSpace(ch.Text)
			switch ch.XMLName.Local {
			case "Node-Type":
				node.Op = c.reg.ResolveOperation("postgresql", val)
			case "Plans":
				for _, sub := range ch.Children {
					if sub.XMLName.Local == "Plan" {
						node.Children = append(node.Children, buildNode(sub))
					}
				}
			case "Startup-Cost":
				addTypedProp(node, core.Cost, "startup cost", parseScalar(val))
			case "Total-Cost":
				addTypedProp(node, core.Cost, "total cost", parseScalar(val))
			case "Rows":
				addTypedProp(node, core.Cardinality, "estimated rows", parseScalar(val))
			case "Width":
				addTypedProp(node, core.Cardinality, "estimated width", parseScalar(val))
			case "Relation-Name":
				addTypedProp(node, core.Configuration, "name object", parseScalar(val))
			default:
				name, cat := c.reg.ResolveProperty("postgresql", tag)
				addTypedProp(node, cat, name, parseScalar(val))
			}
		}
		return node
	}
	var findQuery func(el xmlPlan)
	findQuery = func(el xmlPlan) {
		for _, ch := range el.Children {
			switch ch.XMLName.Local {
			case "Plan":
				plan.Root = buildNode(ch)
			case "Query":
				findQuery(ch)
			default:
				val := strings.TrimSpace(ch.Text)
				if val != "" && len(ch.Children) == 0 {
					tag := strings.ReplaceAll(ch.XMLName.Local, "-", " ")
					name, cat := c.reg.ResolveProperty("postgresql", tag)
					addPlanPropTyped(plan, cat, name, parseScalar(strings.TrimSuffix(val, " ms")))
				}
			}
		}
	}
	findQuery(doc)
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: postgres xml: no Plan element")
	}
	return plan, nil
}

// ------------------------------------------------------- PostgreSQL (YAML)

// convertYAML parses the PostgreSQL YAML explain format (the subset the
// serializer emits: two-space indentation, "Plans:" lists with "- "
// items).
func (c *postgresConverter) convertYAML(s string) (*core.Plan, error) {
	plan := &core.Plan{Source: "postgresql"}
	type frame struct {
		node   *core.Node
		indent int
	}
	var stack []frame
	for it := newLineIter(s); it.next(); {
		raw := it.line
		if strings.TrimSpace(raw) == "" || strings.TrimSpace(raw) == "- Plan:" {
			continue
		}
		indent := indentDepth(raw)
		line := strings.TrimSpace(raw)
		newNode := false
		if strings.HasPrefix(line, "- ") {
			line = strings.TrimPrefix(line, "- ")
			newNode = true
			indent += 2 // the dash occupies the key's indentation
		}
		key, val, ok := splitKV(line)
		if !ok {
			continue
		}
		val = strings.Trim(val, `"`)
		if key == "Plans" {
			continue
		}
		if key == "Node Type" {
			node := &core.Node{Op: c.reg.ResolveOperation("postgresql", val)}
			for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				if plan.Root == nil {
					plan.Root = node
				}
			} else {
				p := stack[len(stack)-1].node
				p.Children = append(p.Children, node)
			}
			stack = append(stack, frame{node, indent})
			continue
		}
		_ = newNode
		if len(stack) == 0 {
			name, cat := c.reg.ResolveProperty("postgresql", key)
			addPlanPropTyped(plan, cat, name, parseScalar(strings.TrimSuffix(val, " ms")))
			continue
		}
		node := stack[len(stack)-1].node
		switch key {
		case "Startup Cost":
			addTypedProp(node, core.Cost, "startup cost", parseScalar(val))
		case "Total Cost":
			addTypedProp(node, core.Cost, "total cost", parseScalar(val))
		case "Rows":
			addTypedProp(node, core.Cardinality, "estimated rows", parseScalar(val))
		case "Width":
			addTypedProp(node, core.Cardinality, "estimated width", parseScalar(val))
		case "Relation Name":
			addTypedProp(node, core.Configuration, "name object", parseScalar(val))
		default:
			addProp(c.reg, "postgresql", node, key, val)
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: postgres yaml: no plan found")
	}
	return plan, nil
}

// ------------------------------------------------------------ MySQL (JSON)

func (c *mysqlConverter) convertJSON(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: mysql json: %w", err)
	}
	qb, ok := doc["query_block"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("convert: mysql json: missing query_block")
	}
	plan := &core.Plan{Source: "mysql"}
	if ci, ok := qb["cost_info"].(map[string]any); ok {
		if qc, ok := ci["query_cost"]; ok {
			addPlanPropTyped(plan, core.Cost, "total cost", scalarFromJSON(qc))
		}
	}
	if p, ok := qb["plan"].(map[string]any); ok {
		plan.Root = c.jsonNode(p)
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: mysql json: empty plan")
	}
	return plan, nil
}

func addPlanPropTyped(p *core.Plan, cat core.PropertyCategory, name string, v core.Value) {
	p.Properties = append(p.Properties, core.Property{Category: cat, Name: name, Value: v})
}

func (c *mysqlConverter) jsonNode(m map[string]any) *core.Node {
	opText, _ := m["operation"].(string)
	node := c.parseTreeLine(opText)
	if ci, ok := m["cost_info"].(map[string]any); ok {
		for k, v := range ci {
			pname, cat := c.reg.ResolveProperty("mysql", k)
			addTypedProp(node, cat, pname, scalarFromJSON(v))
		}
	}
	for k, v := range m {
		switch k {
		case "operation", "inputs", "cost_info":
			continue
		case "rows_examined_per_scan":
			addTypedProp(node, core.Cardinality, "estimated rows", scalarFromJSON(v))
		case "actual_rows":
			addTypedProp(node, core.Cardinality, "actual rows", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("mysql", k)
			addTypedProp(node, cat, pname, scalarFromJSON(v))
		}
	}
	if kids, ok := m["inputs"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.jsonNode(km))
			}
		}
	}
	return node
}

// ------------------------------------------------------------- TiDB (JSON)

type tidbJSONIn struct {
	ID           string       `json:"id"`
	EstRows      string       `json:"estRows"`
	ActRows      string       `json:"actRows"`
	TaskType     string       `json:"taskType"`
	AccessObject string       `json:"accessObject"`
	OperatorInfo string       `json:"operatorInfo"`
	SubOperators []tidbJSONIn `json:"subOperators"`
}

func (c *tidbConverter) convertJSON(s string) (*core.Plan, error) {
	var arr []tidbJSONIn
	if err := json.Unmarshal([]byte(s), &arr); err != nil {
		// Maybe a single object.
		var one tidbJSONIn
		if err2 := json.Unmarshal([]byte(s), &one); err2 != nil {
			return nil, fmt.Errorf("convert: tidb json: %w", err)
		}
		arr = []tidbJSONIn{one}
	}
	if len(arr) == 0 {
		return nil, fmt.Errorf("convert: tidb json: empty plan")
	}
	plan := &core.Plan{Source: "tidb"}
	plan.Root = c.jsonNode(arr[0])
	plan.Root = foldTiDBSelections(plan.Root)
	return plan, nil
}

func (c *tidbConverter) jsonNode(in tidbJSONIn) *core.Node {
	base, suffix := stripOperatorSuffix(in.ID)
	node := &core.Node{Op: c.reg.ResolveOperation("tidb", base)}
	if suffix != "" {
		addTypedProp(node, core.Status, "operator id", core.Str(suffix))
	}
	if in.EstRows != "" {
		addTypedProp(node, core.Cardinality, "estimated rows", parseScalar(in.EstRows))
	}
	if in.ActRows != "" {
		addTypedProp(node, core.Cardinality, "actual rows", parseScalar(in.ActRows))
	}
	if in.TaskType != "" {
		name, cat := c.reg.ResolveProperty("tidb", "task")
		addTypedProp(node, cat, name, core.Str(in.TaskType))
	}
	if in.AccessObject != "" {
		addTypedProp(node, core.Configuration, "access object", core.Str(in.AccessObject))
	}
	if in.OperatorInfo != "" {
		name, cat := c.reg.ResolveProperty("tidb", "operator info")
		addTypedProp(node, cat, name, core.Str(in.OperatorInfo))
	}
	for _, sub := range in.SubOperators {
		node.Children = append(node.Children, c.jsonNode(sub))
	}
	return node
}

// ---------------------------------------------------------- MongoDB (JSON)

type mongoConverter struct{ reg *core.Registry }

func (c *mongoConverter) Dialect() string { return "mongodb" }

func (c *mongoConverter) Convert(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: mongodb json: %w", err)
	}
	qp, ok := doc["queryPlanner"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("convert: mongodb json: missing queryPlanner")
	}
	plan := &core.Plan{Source: "mongodb"}
	if ns, ok := qp["namespace"]; ok {
		addPlanPropTyped(plan, core.Configuration, "name object", scalarFromJSON(ns))
	}
	if wp, ok := qp["winningPlan"].(map[string]any); ok {
		plan.Root = c.stage(wp)
	}
	if es, ok := doc["executionStats"].(map[string]any); ok {
		for k, v := range es {
			name, cat := c.reg.ResolveProperty("mongodb", k)
			addPlanPropTyped(plan, cat, name, scalarFromJSON(v))
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: mongodb json: no winningPlan")
	}
	return plan, nil
}

func (c *mongoConverter) stage(m map[string]any) *core.Node {
	name, _ := m["stage"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("mongodb", name)}
	for k, v := range m {
		switch k {
		case "stage", "inputStage", "inputStages":
			continue
		case "namespace":
			addTypedProp(node, core.Configuration, "name object", scalarFromJSON(v))
		default:
			pname, cat := c.reg.ResolveProperty("mongodb", k)
			addTypedProp(node, cat, pname, scalarFromJSON(v))
		}
	}
	if in, ok := m["inputStage"].(map[string]any); ok {
		node.Children = append(node.Children, c.stage(in))
	}
	if ins, ok := m["inputStages"].([]any); ok {
		for _, kid := range ins {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.stage(km))
			}
		}
	}
	return node
}

// ------------------------------------------------------------ Neo4j (JSON)

func (c *neo4jConverter) convertJSON(s string) (*core.Plan, error) {
	var doc map[string]any
	if err := decodeJSON(s, &doc); err != nil {
		return nil, fmt.Errorf("convert: neo4j json: %w", err)
	}
	plan := &core.Plan{Source: "neo4j"}
	for k, v := range doc {
		if k == "plan" {
			continue
		}
		name, cat := c.reg.ResolveProperty("neo4j", k)
		addPlanPropTyped(plan, cat, name, scalarFromJSON(v))
	}
	if p, ok := doc["plan"].(map[string]any); ok {
		plan.Root = c.jsonNode(p)
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: neo4j json: empty document")
	}
	return plan, nil
}

func (c *neo4jConverter) jsonNode(m map[string]any) *core.Node {
	name, _ := m["operatorType"].(string)
	node := &core.Node{Op: c.reg.ResolveOperation("neo4j", name)}
	if args, ok := m["arguments"].(map[string]any); ok {
		for k, v := range args {
			switch k {
			case "EstimatedRows":
				addTypedProp(node, core.Cardinality, "estimated rows", scalarFromJSON(v))
			case "Rows":
				addTypedProp(node, core.Cardinality, "actual rows", scalarFromJSON(v))
			default:
				pname, cat := c.reg.ResolveProperty("neo4j", k)
				addTypedProp(node, cat, pname, scalarFromJSON(v))
			}
		}
	}
	if kids, ok := m["children"].([]any); ok {
		for _, kid := range kids {
			if km, ok := kid.(map[string]any); ok {
				node.Children = append(node.Children, c.jsonNode(km))
			}
		}
	}
	return node
}

// -------------------------------------------------------- SQL Server (XML)

type sqlserverConverter struct{ reg *core.Registry }

func (c *sqlserverConverter) Dialect() string { return "sqlserver" }

type ssRelOp struct {
	PhysicalOp    string    `xml:"PhysicalOp,attr"`
	LogicalOp     string    `xml:"LogicalOp,attr"`
	EstimateRows  string    `xml:"EstimateRows,attr"`
	EstimatedCost string    `xml:"EstimatedTotalSubtreeCost,attr"`
	Children      []ssRelOp `xml:"RelOp"`
	Object        ssObject  `xml:"Object"`
	InnerXML      []byte    `xml:",innerxml"`
}

type ssObject struct {
	Table string `xml:"Table,attr"`
}

func (c *sqlserverConverter) Convert(s string) (*core.Plan, error) {
	if !strings.Contains(s, "<ShowPlanXML") {
		// SHOWPLAN_TEXT / STATISTICS PROFILE tabular fallbacks.
		if strings.HasPrefix(strings.TrimSpace(s), "+") {
			return c.convertProfileTable(s)
		}
		if strings.Contains(s, "StmtText") {
			return c.convertText(s)
		}
		return nil, fmt.Errorf("convert: sqlserver: unrecognized input")
	}
	// Locate the top RelOp elements inside the document.
	dec := xml.NewDecoder(strings.NewReader(s))
	plan := &core.Plan{Source: "sqlserver"}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "RelOp" {
			var rel ssRelOp
			if err := dec.DecodeElement(&rel, &se); err != nil {
				return nil, fmt.Errorf("convert: sqlserver xml: %w", err)
			}
			plan.Root = c.relOpNode(rel)
			break
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver xml: no RelOp element")
	}
	return plan, nil
}

func (c *sqlserverConverter) relOpNode(rel ssRelOp) *core.Node {
	node := &core.Node{Op: c.reg.ResolveOperation("sqlserver", rel.PhysicalOp)}
	if rel.EstimateRows != "" {
		name, cat := c.reg.ResolveProperty("sqlserver", "EstimateRows")
		addTypedProp(node, cat, name, parseScalar(rel.EstimateRows))
	}
	if rel.EstimatedCost != "" {
		name, cat := c.reg.ResolveProperty("sqlserver", "EstimatedTotalSubtreeCost")
		addTypedProp(node, cat, name, parseScalar(rel.EstimatedCost))
	}
	if rel.LogicalOp != "" {
		addTypedProp(node, core.Configuration, "logical operation", core.Str(rel.LogicalOp))
	}
	if rel.Object.Table != "" {
		addTypedProp(node, core.Configuration, "name object",
			core.Str(strings.Trim(rel.Object.Table, "[]")))
	}
	// Extract simple child elements (e.g. <Predicate>…</Predicate>) from
	// the inner XML, skipping nested RelOps which are handled structurally.
	for key, val := range simpleXMLElements(rel.InnerXML) {
		name, cat := c.reg.ResolveProperty("sqlserver", key)
		addTypedProp(node, cat, name, parseScalar(val))
	}
	for _, child := range rel.Children {
		node.Children = append(node.Children, c.relOpNode(child))
	}
	return node
}

// simpleXMLElements extracts top-level scalar elements from an XML
// fragment, skipping RelOp and Object subtrees.
func simpleXMLElements(fragment []byte) map[string]string {
	out := map[string]string{}
	dec := xml.NewDecoder(bytes.NewReader(fragment))
	depth := 0
	current := ""
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 1 {
				if t.Name.Local == "RelOp" || t.Name.Local == "Object" {
					if err := dec.Skip(); err != nil {
						return out
					}
					depth--
					continue
				}
				current = t.Name.Local
				text.Reset()
			}
		case xml.CharData:
			if depth == 1 && current != "" {
				text.Write(t)
			}
		case xml.EndElement:
			if depth == 1 && current != "" {
				out[current] = strings.TrimSpace(text.String())
				current = ""
			}
			depth--
		}
	}
	return out
}

// convertProfileTable parses SET STATISTICS PROFILE tabular output: the
// StmtText column carries a "|--" tree indented two spaces per level.
func (c *sqlserverConverter) convertProfileTable(s string) (*core.Plan, error) {
	rows, header, err := parseAlignedTable(s)
	if err != nil {
		return nil, err
	}
	stmtIdx, estIdx, costIdx, rowsIdx := -1, -1, -1, -1
	for i, h := range header {
		switch h {
		case "StmtText":
			stmtIdx = i
		case "EstimateRows":
			estIdx = i
		case "TotalSubtreeCost":
			costIdx = i
		case "Rows":
			rowsIdx = i
		}
	}
	if stmtIdx < 0 {
		return nil, fmt.Errorf("convert: sqlserver table lacks StmtText column")
	}
	plan := &core.Plan{Source: "sqlserver"}
	type frame struct {
		node  *core.Node
		depth int
	}
	var stack []frame
	for _, r := range rows {
		cell := r[stmtIdx]
		bar := strings.Index(cell, "|--")
		depth := 0
		body := strings.TrimSpace(cell)
		if bar >= 0 {
			depth = bar / 2
			body = strings.TrimSpace(cell[bar+3:])
		}
		name := body
		if i := strings.IndexAny(body, "(["); i > 0 {
			name = strings.TrimSpace(body[:i])
		}
		node := &core.Node{Op: c.reg.ResolveOperation("sqlserver", name)}
		if i := strings.Index(body, "(["); i >= 0 {
			rest := body[i+2:]
			if j := strings.Index(rest, "]"); j >= 0 {
				addTypedProp(node, core.Configuration, "name object", core.Str(rest[:j]))
			}
		}
		if estIdx >= 0 && strings.TrimSpace(r[estIdx]) != "" {
			addTypedProp(node, core.Cardinality, "estimated rows", parseScalar(r[estIdx]))
		}
		if costIdx >= 0 && strings.TrimSpace(r[costIdx]) != "" {
			addTypedProp(node, core.Cost, "total cost", parseScalar(r[costIdx]))
		}
		if rowsIdx >= 0 && strings.TrimSpace(r[rowsIdx]) != "" {
			addTypedProp(node, core.Cardinality, "actual rows", parseScalar(r[rowsIdx]))
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: sqlserver table: multiple roots")
			}
			plan.Root = node
		} else {
			p := stack[len(stack)-1].node
			p.Children = append(p.Children, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver table: empty plan")
	}
	return plan, nil
}

// convertText parses SHOWPLAN_TEXT output: "|--" nesting.
func (c *sqlserverConverter) convertText(s string) (*core.Plan, error) {
	plan := &core.Plan{Source: "sqlserver"}
	type frame struct {
		node  *core.Node
		depth int
	}
	var stack []frame
	for it := newLineIter(s); it.next(); {
		line := strings.TrimRight(it.line, " ")
		t := strings.TrimSpace(line)
		if t == "" || t == "StmtText" || strings.HasPrefix(t, "---") {
			continue
		}
		bar := strings.Index(line, "|--")
		depth := 0
		body := t
		if bar >= 0 {
			depth = bar/5 + 1
			body = strings.TrimSpace(line[bar+3:])
		}
		name := body
		if i := strings.IndexAny(body, "("); i > 0 {
			name = strings.TrimSpace(body[:i])
		}
		if i := strings.Index(name, " WHERE:"); i > 0 {
			name = strings.TrimSpace(name[:i])
		}
		node := &core.Node{Op: c.reg.ResolveOperation("sqlserver", name)}
		if i := strings.Index(body, "OBJECT:(["); i >= 0 {
			rest := body[i+9:]
			if j := strings.Index(rest, "]"); j >= 0 {
				addTypedProp(node, core.Configuration, "name object", core.Str(rest[:j]))
			}
		}
		if i := strings.Index(body, "WHERE:("); i >= 0 {
			rest := body[i+7:]
			if j := strings.LastIndex(rest, ")"); j >= 0 {
				name, cat := c.reg.ResolveProperty("sqlserver", "Predicate")
				addTypedProp(node, cat, name, core.Str(rest[:j]))
			}
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: sqlserver text: multiple roots")
			}
			plan.Root = node
		} else {
			p := stack[len(stack)-1].node
			p.Children = append(p.Children, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver text: no plan found")
	}
	return plan, nil
}
