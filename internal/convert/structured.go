package convert

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"

	"uplan/internal/core"
)

// Structured-format parsers: PostgreSQL JSON, MySQL JSON, TiDB JSON,
// MongoDB explain JSON, Neo4j JSON, and SQL Server showplan XML.
//
// The JSON formats decode through the streaming jsonScan walker (see
// jsonscan.go): object keys drive core.Node construction directly, with
// no intermediate map[string]any / []any trees, and every node, property
// list, and child list is allocated from the caller's core.PlanArena
// (nil arena → heap). The retained map-based decoders live in
// jsonlegacy.go and serve as the reference implementation for the
// differential tests.

// newJSONNodeIn allocates a JSON plan node with its operation still
// unknown; the scanners fill Op when (if) they meet the type key.
func newJSONNodeIn(ar *core.PlanArena) *core.Node {
	return ar.NewNodeIn("", "")
}

// ------------------------------------------------------- PostgreSQL (JSON)

// errPGArrayElement is already fully phrased; convertJSON returns it
// as-is instead of wrapping it like scanner errors.
var errPGArrayElement = errors.New("convert: postgres json: unexpected array element")

//uplan:hotpath
func (c *postgresConverter) convertJSON(s string, ar *core.PlanArena) (*core.Plan, error) {
	sc := newJSONScan(s)
	sc.ar = ar
	plan := &core.Plan{Source: "postgresql"}
	scanTop := func() error {
		return sc.scanObject(func(key string) error {
			if key == "Plan" {
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				root, err := c.scanJSONNode(&sc, ar)
				if err != nil {
					return err
				}
				plan.Root = root
				return nil
			}
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			name, cat := c.reg.ResolveProperty("postgresql", key)
			ar.AddPlanPropertyIn(plan, cat, name, v)
			return nil
		})
	}
	// Accept both the canonical one-element array and a bare object.
	switch sc.peek() {
	case '[':
		seen := false
		err := sc.scanArray(func(i int) error {
			if i > 0 {
				return sc.skipValue()
			}
			if sc.peek() != '{' {
				return errPGArrayElement
			}
			seen = true
			return scanTop()
		})
		if err != nil {
			if errors.Is(err, errPGArrayElement) {
				return nil, err
			}
			return nil, fmt.Errorf("convert: postgres json: %w", err)
		}
		if !seen {
			return nil, fmt.Errorf("convert: postgres json: unexpected top-level shape")
		}
	case '{':
		if err := scanTop(); err != nil {
			return nil, fmt.Errorf("convert: postgres json: %w", err)
		}
	default:
		return nil, fmt.Errorf("convert: postgres json: unexpected top-level shape")
	}
	return plan, nil
}

//uplan:hotpath
func (c *postgresConverter) scanJSONNode(sc *jsonScan, ar *core.PlanArena) (*core.Node, error) {
	node := newJSONNodeIn(ar)
	sawType := false
	prop := func(cat core.PropertyCategory, name string) error {
		v, err := sc.scanValue()
		if err != nil {
			return err
		}
		addTypedProp(ar, node, cat, name, v)
		return nil
	}
	err := sc.scanObject(func(key string) error {
		switch key {
		case "Node Type":
			name, ok, err := sc.scanStringValue()
			if err != nil {
				return err
			}
			if ok {
				node.Op = c.reg.ResolveOperation("postgresql", name)
				sawType = true
			}
			return nil
		case "Plans":
			if sc.peek() != '[' {
				return sc.skipValue()
			}
			return sc.scanArray(func(int) error {
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				child, err := c.scanJSONNode(sc, ar)
				if err != nil {
					return err
				}
				ar.AddChildIn(node, child)
				return nil
			})
		case "Parent Relationship":
			return prop(core.Configuration, "parent relationship")
		case "Startup Cost":
			return prop(core.Cost, "startup cost")
		case "Total Cost":
			return prop(core.Cost, "total cost")
		case "Plan Rows":
			return prop(core.Cardinality, "estimated rows")
		case "Plan Width":
			return prop(core.Cardinality, "estimated width")
		case "Actual Rows":
			return prop(core.Cardinality, "actual rows")
		case "Actual Total Time":
			return prop(core.Status, "actual time")
		case "Relation Name":
			return prop(core.Configuration, "name object")
		default:
			pname, cat := c.reg.ResolveProperty("postgresql", key)
			return prop(cat, pname)
		}
	})
	if err != nil {
		return nil, err
	}
	if !sawType {
		node.Op = c.reg.ResolveOperation("postgresql", "")
	}
	return node, nil
}

// -------------------------------------------------------- PostgreSQL (XML)

// convertXML parses the PostgreSQL XML explain format: nested <Plan>
// elements with dash-separated tag names.
func (c *postgresConverter) convertXML(s string, ar *core.PlanArena) (*core.Plan, error) {
	type xmlPlan struct {
		XMLName  xml.Name
		Children []xmlPlan `xml:",any"`
		Text     string    `xml:",chardata"`
	}
	var doc xmlPlan
	if err := xml.Unmarshal([]byte(s), &doc); err != nil {
		return nil, fmt.Errorf("convert: postgres xml: %w", err)
	}
	plan := &core.Plan{Source: "postgresql"}
	var buildNode func(el xmlPlan) *core.Node
	buildNode = func(el xmlPlan) *core.Node {
		node := newJSONNodeIn(ar)
		for _, ch := range el.Children {
			tag := strings.ReplaceAll(ch.XMLName.Local, "-", " ")
			val := strings.TrimSpace(ch.Text)
			switch ch.XMLName.Local {
			case "Node-Type":
				node.Op = c.reg.ResolveOperation("postgresql", val)
			case "Plans":
				for _, sub := range ch.Children {
					if sub.XMLName.Local == "Plan" {
						ar.AddChildIn(node, buildNode(sub))
					}
				}
			case "Startup-Cost":
				addTypedProp(ar, node, core.Cost, "startup cost", parseScalar(val))
			case "Total-Cost":
				addTypedProp(ar, node, core.Cost, "total cost", parseScalar(val))
			case "Rows":
				addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(val))
			case "Width":
				addTypedProp(ar, node, core.Cardinality, "estimated width", parseScalar(val))
			case "Relation-Name":
				addTypedProp(ar, node, core.Configuration, "name object", parseScalar(val))
			default:
				name, cat := c.reg.ResolveProperty("postgresql", tag)
				addTypedProp(ar, node, cat, name, parseScalar(val))
			}
		}
		return node
	}
	var findQuery func(el xmlPlan)
	findQuery = func(el xmlPlan) {
		for _, ch := range el.Children {
			switch ch.XMLName.Local {
			case "Plan":
				plan.Root = buildNode(ch)
			case "Query":
				findQuery(ch)
			default:
				val := strings.TrimSpace(ch.Text)
				if val != "" && len(ch.Children) == 0 {
					tag := strings.ReplaceAll(ch.XMLName.Local, "-", " ")
					name, cat := c.reg.ResolveProperty("postgresql", tag)
					addPlanPropTyped(ar, plan, cat, name, parseScalar(strings.TrimSuffix(val, " ms")))
				}
			}
		}
	}
	findQuery(doc)
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: postgres xml: no Plan element")
	}
	return plan, nil
}

// ------------------------------------------------------- PostgreSQL (YAML)

// convertYAML parses the PostgreSQL YAML explain format (the subset the
// serializer emits: two-space indentation, "Plans:" lists with "- "
// items).
func (c *postgresConverter) convertYAML(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "postgresql"}
	type frame struct {
		node   *core.Node
		indent int
	}
	stack := make([]frame, 0, 8)
	for it := newLineIter(s); it.next(); {
		raw := it.line
		if strings.TrimSpace(raw) == "" || strings.TrimSpace(raw) == "- Plan:" {
			continue
		}
		indent := indentDepth(raw)
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "- ") {
			line = strings.TrimPrefix(line, "- ")
			indent += 2 // the dash occupies the key's indentation
		}
		key, val, ok := splitKV(line)
		if !ok {
			continue
		}
		val = strings.Trim(val, `"`)
		if key == "Plans" {
			continue
		}
		if key == "Node Type" {
			op := c.reg.ResolveOperation("postgresql", val)
			node := ar.NewNodeIn(op.Category, op.Name)
			for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				if plan.Root == nil {
					plan.Root = node
				}
			} else {
				ar.AddChildIn(stack[len(stack)-1].node, node)
			}
			stack = append(stack, frame{node, indent})
			continue
		}
		if len(stack) == 0 {
			name, cat := c.reg.ResolveProperty("postgresql", key)
			addPlanPropTyped(ar, plan, cat, name, parseScalar(strings.TrimSuffix(val, " ms")))
			continue
		}
		node := stack[len(stack)-1].node
		switch key {
		case "Startup Cost":
			addTypedProp(ar, node, core.Cost, "startup cost", parseScalar(val))
		case "Total Cost":
			addTypedProp(ar, node, core.Cost, "total cost", parseScalar(val))
		case "Rows":
			addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(val))
		case "Width":
			addTypedProp(ar, node, core.Cardinality, "estimated width", parseScalar(val))
		case "Relation Name":
			addTypedProp(ar, node, core.Configuration, "name object", parseScalar(val))
		default:
			addProp(c.reg, "postgresql", ar, node, key, val)
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: postgres yaml: no plan found")
	}
	return plan, nil
}

// ------------------------------------------------------------ MySQL (JSON)

//uplan:hotpath
func (c *mysqlConverter) convertJSON(s string, ar *core.PlanArena) (*core.Plan, error) {
	sc := newJSONScan(s)
	sc.ar = ar
	plan := &core.Plan{Source: "mysql"}
	foundQB := false
	err := sc.scanObject(func(key string) error {
		if key != "query_block" || sc.peek() != '{' {
			return sc.skipValue()
		}
		foundQB = true
		return sc.scanObject(func(qk string) error {
			switch qk {
			case "cost_info":
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				return sc.scanObject(func(ck string) error {
					if ck != "query_cost" {
						return sc.skipValue()
					}
					v, err := sc.scanValue()
					if err != nil {
						return err
					}
					addPlanPropTyped(ar, plan, core.Cost, "total cost", v)
					return nil
				})
			case "plan":
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				root, err := c.scanJSONNode(&sc, ar)
				if err != nil {
					return err
				}
				plan.Root = root
				return nil
			default:
				return sc.skipValue()
			}
		})
	})
	if err != nil {
		return nil, fmt.Errorf("convert: mysql json: %w", err)
	}
	if !foundQB {
		return nil, fmt.Errorf("convert: mysql json: missing query_block")
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: mysql json: empty plan")
	}
	return plan, nil
}

// addPlanPropTyped appends a plan-level property with an explicit
// category, allocating from ar when non-nil.
func addPlanPropTyped(ar *core.PlanArena, p *core.Plan, cat core.PropertyCategory, name string, v core.Value) {
	ar.AddPlanPropertyIn(p, cat, name, v)
}

//uplan:hotpath
func (c *mysqlConverter) scanJSONNode(sc *jsonScan, ar *core.PlanArena) (*core.Node, error) {
	node := newJSONNodeIn(ar)
	sawOp := false
	err := sc.scanObject(func(key string) error {
		switch key {
		case "operation":
			title, ok, err := sc.scanStringValue()
			if err != nil || !ok {
				return err
			}
			c.parseTreeLineInto(node, title, ar)
			sawOp = true
			return nil
		case "cost_info":
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			return sc.scanObject(func(ck string) error {
				v, err := sc.scanValue()
				if err != nil {
					return err
				}
				pname, cat := c.reg.ResolveProperty("mysql", ck)
				addTypedProp(ar, node, cat, pname, v)
				return nil
			})
		case "inputs":
			if sc.peek() != '[' {
				return sc.skipValue()
			}
			return sc.scanArray(func(int) error {
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				child, err := c.scanJSONNode(sc, ar)
				if err != nil {
					return err
				}
				ar.AddChildIn(node, child)
				return nil
			})
		case "rows_examined_per_scan":
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			addTypedProp(ar, node, core.Cardinality, "estimated rows", v)
			return nil
		case "actual_rows":
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			addTypedProp(ar, node, core.Cardinality, "actual rows", v)
			return nil
		default:
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			pname, cat := c.reg.ResolveProperty("mysql", key)
			addTypedProp(ar, node, cat, pname, v)
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	if !sawOp {
		node.Op = c.reg.ResolveOperation("mysql", "")
	}
	return node, nil
}

// ------------------------------------------------------------- TiDB (JSON)

// tidbJSONFields are the scalar fields of one TiDB JSON operator object.
type tidbJSONFields struct {
	ID           string
	EstRows      string
	ActRows      string
	TaskType     string
	AccessObject string
	OperatorInfo string
}

//uplan:hotpath
func (c *tidbConverter) convertJSON(s string, ar *core.PlanArena) (*core.Plan, error) {
	sc := newJSONScan(s)
	sc.ar = ar
	var root *core.Node
	switch sc.peek() {
	case '[':
		seen := false
		err := sc.scanArray(func(i int) error {
			// Only element 0 becomes the plan, but every element is
			// decoded: the legacy json.Unmarshal reference type-checked
			// the whole array, and skipping would accept documents it
			// rejected.
			n, err := c.scanJSONNode(&sc, ar)
			if err != nil {
				return err
			}
			if i == 0 {
				root, seen = n, true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("convert: tidb json: %w", err)
		}
		if !seen {
			return nil, fmt.Errorf("convert: tidb json: empty plan")
		}
	case '{':
		n, err := c.scanJSONNode(&sc, ar)
		if err != nil {
			return nil, fmt.Errorf("convert: tidb json: %w", err)
		}
		root = n
	default:
		return nil, fmt.Errorf("convert: tidb json: unexpected top-level shape")
	}
	// The legacy decoder was json.Unmarshal, which rejects trailing
	// garbage; keep that strictness.
	if err := sc.requireEOF(); err != nil {
		return nil, fmt.Errorf("convert: tidb json: %w", err)
	}
	plan := &core.Plan{Source: "tidb"}
	plan.Root = foldTiDBSelections(root)
	return plan, nil
}

//uplan:hotpath
func (c *tidbConverter) scanJSONNode(sc *jsonScan, ar *core.PlanArena) (*core.Node, error) {
	var in tidbJSONFields
	var children []*core.Node
	strField := func(dst *string) error {
		if sc.peek() == 'n' { // JSON null leaves the field empty, like Unmarshal
			return sc.scanLiteral("null")
		}
		v, ok, err := sc.scanStringValue()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("non-string operator field")
		}
		*dst = v
		return nil
	}
	err := sc.scanObject(func(key string) error {
		switch key {
		case "id":
			return strField(&in.ID)
		case "estRows":
			return strField(&in.EstRows)
		case "actRows":
			return strField(&in.ActRows)
		case "taskType":
			return strField(&in.TaskType)
		case "accessObject":
			return strField(&in.AccessObject)
		case "operatorInfo":
			return strField(&in.OperatorInfo)
		case "subOperators":
			if sc.peek() == 'n' {
				return sc.scanLiteral("null")
			}
			return sc.scanArray(func(int) error {
				child, err := c.scanJSONNode(sc, ar)
				if err != nil {
					return err
				}
				children = ar.AppendChildIn(children, child)
				return nil
			})
		default:
			return sc.skipValue()
		}
	})
	if err != nil {
		return nil, err
	}
	node := c.nodeFromJSONFields(in, ar)
	node.Children = children
	return node, nil
}

// nodeFromJSONFields maps one operator object's scalar fields onto a node;
// shared by the streaming decoder above and the legacy reference decoder.
func (c *tidbConverter) nodeFromJSONFields(in tidbJSONFields, ar *core.PlanArena) *core.Node {
	base, suffix := stripOperatorSuffix(in.ID)
	op := c.reg.ResolveOperation("tidb", base)
	node := ar.NewNodeIn(op.Category, op.Name)
	if suffix != "" {
		addTypedProp(ar, node, core.Status, "operator id", core.Str(suffix))
	}
	if in.EstRows != "" {
		addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(in.EstRows))
	}
	if in.ActRows != "" {
		addTypedProp(ar, node, core.Cardinality, "actual rows", parseScalar(in.ActRows))
	}
	if in.TaskType != "" {
		name, cat := c.reg.ResolveProperty("tidb", "task")
		addTypedProp(ar, node, cat, name, core.Str(in.TaskType))
	}
	if in.AccessObject != "" {
		addTypedProp(ar, node, core.Configuration, "access object", core.Str(in.AccessObject))
	}
	if in.OperatorInfo != "" {
		name, cat := c.reg.ResolveProperty("tidb", "operator info")
		addTypedProp(ar, node, cat, name, core.Str(in.OperatorInfo))
	}
	return node
}

// ---------------------------------------------------------- MongoDB (JSON)

type mongoConverter struct{ reg *core.Registry }

func (c *mongoConverter) Dialect() string { return "mongodb" }

func (c *mongoConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

//uplan:hotpath
func (c *mongoConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	sc := newJSONScan(s)
	sc.ar = ar
	plan := &core.Plan{Source: "mongodb"}
	foundQP := false
	err := sc.scanObject(func(key string) error {
		switch key {
		case "queryPlanner":
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			foundQP = true
			return sc.scanObject(func(qk string) error {
				switch qk {
				case "namespace":
					v, err := sc.scanValue()
					if err != nil {
						return err
					}
					addPlanPropTyped(ar, plan, core.Configuration, "name object", v)
					return nil
				case "winningPlan":
					if sc.peek() != '{' {
						return sc.skipValue()
					}
					root, err := c.scanStage(&sc, ar)
					if err != nil {
						return err
					}
					plan.Root = root
					return nil
				default:
					return sc.skipValue()
				}
			})
		case "executionStats":
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			return sc.scanObject(func(ek string) error {
				v, err := sc.scanValue()
				if err != nil {
					return err
				}
				name, cat := c.reg.ResolveProperty("mongodb", ek)
				addPlanPropTyped(ar, plan, cat, name, v)
				return nil
			})
		default:
			return sc.skipValue()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("convert: mongodb json: %w", err)
	}
	if !foundQP {
		return nil, fmt.Errorf("convert: mongodb json: missing queryPlanner")
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: mongodb json: no winningPlan")
	}
	return plan, nil
}

//uplan:hotpath
func (c *mongoConverter) scanStage(sc *jsonScan, ar *core.PlanArena) (*core.Node, error) {
	node := newJSONNodeIn(ar)
	sawStage := false
	// inputStage precedes inputStages in the children, whatever the
	// document's key order (the legacy decoder's fixed attachment order).
	var first *core.Node
	var rest []*core.Node
	err := sc.scanObject(func(key string) error {
		switch key {
		case "stage":
			name, ok, err := sc.scanStringValue()
			if err != nil {
				return err
			}
			if ok {
				node.Op = c.reg.ResolveOperation("mongodb", name)
				sawStage = true
			}
			return nil
		case "inputStage":
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			child, err := c.scanStage(sc, ar)
			if err != nil {
				return err
			}
			first = child
			return nil
		case "inputStages":
			if sc.peek() != '[' {
				return sc.skipValue()
			}
			return sc.scanArray(func(int) error {
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				child, err := c.scanStage(sc, ar)
				if err != nil {
					return err
				}
				rest = ar.AppendChildIn(rest, child)
				return nil
			})
		case "namespace":
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			addTypedProp(ar, node, core.Configuration, "name object", v)
			return nil
		default:
			v, err := sc.scanValue()
			if err != nil {
				return err
			}
			pname, cat := c.reg.ResolveProperty("mongodb", key)
			addTypedProp(ar, node, cat, pname, v)
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	if !sawStage {
		node.Op = c.reg.ResolveOperation("mongodb", "")
	}
	if first != nil {
		ar.AddChildIn(node, first)
	}
	for _, r := range rest {
		ar.AddChildIn(node, r)
	}
	return node, nil
}

// ------------------------------------------------------------ Neo4j (JSON)

//uplan:hotpath
func (c *neo4jConverter) convertJSON(s string, ar *core.PlanArena) (*core.Plan, error) {
	sc := newJSONScan(s)
	sc.ar = ar
	plan := &core.Plan{Source: "neo4j"}
	err := sc.scanObject(func(key string) error {
		if key == "plan" {
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			root, err := c.scanJSONNode(&sc, ar)
			if err != nil {
				return err
			}
			plan.Root = root
			return nil
		}
		v, err := sc.scanValue()
		if err != nil {
			return err
		}
		name, cat := c.reg.ResolveProperty("neo4j", key)
		addPlanPropTyped(ar, plan, cat, name, v)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("convert: neo4j json: %w", err)
	}
	if plan.Root == nil && len(plan.Properties) == 0 {
		return nil, fmt.Errorf("convert: neo4j json: empty document")
	}
	return plan, nil
}

//uplan:hotpath
func (c *neo4jConverter) scanJSONNode(sc *jsonScan, ar *core.PlanArena) (*core.Node, error) {
	node := newJSONNodeIn(ar)
	sawOp := false
	err := sc.scanObject(func(key string) error {
		switch key {
		case "operatorType":
			name, ok, err := sc.scanStringValue()
			if err != nil {
				return err
			}
			if ok {
				node.Op = c.reg.ResolveOperation("neo4j", name)
				sawOp = true
			}
			return nil
		case "arguments":
			if sc.peek() != '{' {
				return sc.skipValue()
			}
			return sc.scanObject(func(ak string) error {
				v, err := sc.scanValue()
				if err != nil {
					return err
				}
				switch ak {
				case "EstimatedRows":
					addTypedProp(ar, node, core.Cardinality, "estimated rows", v)
				case "Rows":
					addTypedProp(ar, node, core.Cardinality, "actual rows", v)
				default:
					pname, cat := c.reg.ResolveProperty("neo4j", ak)
					addTypedProp(ar, node, cat, pname, v)
				}
				return nil
			})
		case "children":
			if sc.peek() != '[' {
				return sc.skipValue()
			}
			return sc.scanArray(func(int) error {
				if sc.peek() != '{' {
					return sc.skipValue()
				}
				child, err := c.scanJSONNode(sc, ar)
				if err != nil {
					return err
				}
				ar.AddChildIn(node, child)
				return nil
			})
		default:
			return sc.skipValue()
		}
	})
	if err != nil {
		return nil, err
	}
	if !sawOp {
		node.Op = c.reg.ResolveOperation("neo4j", "")
	}
	return node, nil
}

// -------------------------------------------------------- SQL Server (XML)

type sqlserverConverter struct{ reg *core.Registry }

func (c *sqlserverConverter) Dialect() string { return "sqlserver" }

type ssRelOp struct {
	PhysicalOp    string    `xml:"PhysicalOp,attr"`
	LogicalOp     string    `xml:"LogicalOp,attr"`
	EstimateRows  string    `xml:"EstimateRows,attr"`
	EstimatedCost string    `xml:"EstimatedTotalSubtreeCost,attr"`
	Children      []ssRelOp `xml:"RelOp"`
	Object        ssObject  `xml:"Object"`
	InnerXML      []byte    `xml:",innerxml"`
}

type ssObject struct {
	Table string `xml:"Table,attr"`
}

func (c *sqlserverConverter) Convert(s string) (*core.Plan, error) {
	return convertPooled(c, s)
}

func (c *sqlserverConverter) ConvertIn(s string, ar *core.PlanArena) (*core.Plan, error) {
	if !strings.Contains(s, "<ShowPlanXML") {
		// SHOWPLAN_TEXT / STATISTICS PROFILE tabular fallbacks.
		if strings.HasPrefix(strings.TrimSpace(s), "+") {
			return c.convertProfileTable(s, ar)
		}
		if strings.Contains(s, "StmtText") {
			return c.convertText(s, ar)
		}
		return nil, fmt.Errorf("convert: sqlserver: unrecognized input")
	}
	// Locate the top RelOp elements inside the document.
	dec := xml.NewDecoder(strings.NewReader(s))
	plan := &core.Plan{Source: "sqlserver"}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "RelOp" {
			var rel ssRelOp
			if err := dec.DecodeElement(&rel, &se); err != nil {
				return nil, fmt.Errorf("convert: sqlserver xml: %w", err)
			}
			plan.Root = c.relOpNode(rel, ar)
			break
		}
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver xml: no RelOp element")
	}
	return plan, nil
}

func (c *sqlserverConverter) relOpNode(rel ssRelOp, ar *core.PlanArena) *core.Node {
	op := c.reg.ResolveOperation("sqlserver", rel.PhysicalOp)
	node := ar.NewNodeIn(op.Category, op.Name)
	if rel.EstimateRows != "" {
		name, cat := c.reg.ResolveProperty("sqlserver", "EstimateRows")
		addTypedProp(ar, node, cat, name, parseScalar(rel.EstimateRows))
	}
	if rel.EstimatedCost != "" {
		name, cat := c.reg.ResolveProperty("sqlserver", "EstimatedTotalSubtreeCost")
		addTypedProp(ar, node, cat, name, parseScalar(rel.EstimatedCost))
	}
	if rel.LogicalOp != "" {
		addTypedProp(ar, node, core.Configuration, "logical operation", core.Str(rel.LogicalOp))
	}
	if rel.Object.Table != "" {
		addTypedProp(ar, node, core.Configuration, "name object",
			core.Str(strings.Trim(rel.Object.Table, "[]")))
	}
	// Extract simple child elements (e.g. <Predicate>…</Predicate>) from
	// the inner XML, skipping nested RelOps which are handled structurally.
	for key, val := range simpleXMLElements(rel.InnerXML) {
		name, cat := c.reg.ResolveProperty("sqlserver", key)
		addTypedProp(ar, node, cat, name, parseScalar(val))
	}
	for _, child := range rel.Children {
		ar.AddChildIn(node, c.relOpNode(child, ar))
	}
	return node
}

// simpleXMLElements extracts top-level scalar elements from an XML
// fragment, skipping RelOp and Object subtrees.
func simpleXMLElements(fragment []byte) map[string]string {
	out := map[string]string{}
	dec := xml.NewDecoder(bytes.NewReader(fragment))
	depth := 0
	current := ""
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 1 {
				if t.Name.Local == "RelOp" || t.Name.Local == "Object" {
					if err := dec.Skip(); err != nil {
						return out
					}
					depth--
					continue
				}
				current = t.Name.Local
				text.Reset()
			}
		case xml.CharData:
			if depth == 1 && current != "" {
				text.Write(t)
			}
		case xml.EndElement:
			if depth == 1 && current != "" {
				out[current] = strings.TrimSpace(text.String())
				current = ""
			}
			depth--
		}
	}
	return out
}

// convertProfileTable parses SET STATISTICS PROFILE tabular output: the
// StmtText column carries a "|--" tree indented two spaces per level.
func (c *sqlserverConverter) convertProfileTable(s string, ar *core.PlanArena) (*core.Plan, error) {
	rows, header, err := parseAlignedTable(s)
	if err != nil {
		return nil, err
	}
	stmtIdx, estIdx, costIdx, rowsIdx := -1, -1, -1, -1
	for i, h := range header {
		switch h {
		case "StmtText":
			stmtIdx = i
		case "EstimateRows":
			estIdx = i
		case "TotalSubtreeCost":
			costIdx = i
		case "Rows":
			rowsIdx = i
		}
	}
	if stmtIdx < 0 {
		return nil, fmt.Errorf("convert: sqlserver table lacks StmtText column")
	}
	plan := &core.Plan{Source: "sqlserver"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for _, r := range rows {
		cell := r[stmtIdx]
		bar := strings.Index(cell, "|--")
		depth := 0
		body := strings.TrimSpace(cell)
		if bar >= 0 {
			depth = bar / 2
			body = strings.TrimSpace(cell[bar+3:])
		}
		name := body
		if i := strings.IndexAny(body, "(["); i > 0 {
			name = strings.TrimSpace(body[:i])
		}
		op := c.reg.ResolveOperation("sqlserver", name)
		node := ar.NewNodeIn(op.Category, op.Name)
		if i := strings.Index(body, "(["); i >= 0 {
			rest := body[i+2:]
			if j := strings.Index(rest, "]"); j >= 0 {
				addTypedProp(ar, node, core.Configuration, "name object", core.Str(rest[:j]))
			}
		}
		if estIdx >= 0 && strings.TrimSpace(r[estIdx]) != "" {
			addTypedProp(ar, node, core.Cardinality, "estimated rows", parseScalar(r[estIdx]))
		}
		if costIdx >= 0 && strings.TrimSpace(r[costIdx]) != "" {
			addTypedProp(ar, node, core.Cost, "total cost", parseScalar(r[costIdx]))
		}
		if rowsIdx >= 0 && strings.TrimSpace(r[rowsIdx]) != "" {
			addTypedProp(ar, node, core.Cardinality, "actual rows", parseScalar(r[rowsIdx]))
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: sqlserver table: multiple roots")
			}
			plan.Root = node
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver table: empty plan")
	}
	return plan, nil
}

// convertText parses SHOWPLAN_TEXT output: "|--" nesting.
func (c *sqlserverConverter) convertText(s string, ar *core.PlanArena) (*core.Plan, error) {
	plan := &core.Plan{Source: "sqlserver"}
	type frame struct {
		node  *core.Node
		depth int
	}
	stack := make([]frame, 0, 8)
	for it := newLineIter(s); it.next(); {
		line := strings.TrimRight(it.line, " ")
		t := strings.TrimSpace(line)
		if t == "" || t == "StmtText" || strings.HasPrefix(t, "---") {
			continue
		}
		bar := strings.Index(line, "|--")
		depth := 0
		body := t
		if bar >= 0 {
			depth = bar/5 + 1
			body = strings.TrimSpace(line[bar+3:])
		}
		name := body
		if i := strings.IndexAny(body, "("); i > 0 {
			name = strings.TrimSpace(body[:i])
		}
		if i := strings.Index(name, " WHERE:"); i > 0 {
			name = strings.TrimSpace(name[:i])
		}
		op := c.reg.ResolveOperation("sqlserver", name)
		node := ar.NewNodeIn(op.Category, op.Name)
		if i := strings.Index(body, "OBJECT:(["); i >= 0 {
			rest := body[i+9:]
			if j := strings.Index(rest, "]"); j >= 0 {
				addTypedProp(ar, node, core.Configuration, "name object", core.Str(rest[:j]))
			}
		}
		if i := strings.Index(body, "WHERE:("); i >= 0 {
			rest := body[i+7:]
			if j := strings.LastIndex(rest, ")"); j >= 0 {
				name, cat := c.reg.ResolveProperty("sqlserver", "Predicate")
				addTypedProp(ar, node, cat, name, core.Str(rest[:j]))
			}
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if plan.Root != nil {
				return nil, fmt.Errorf("convert: sqlserver text: multiple roots")
			}
			plan.Root = node
		} else {
			ar.AddChildIn(stack[len(stack)-1].node, node)
		}
		stack = append(stack, frame{node, depth})
	}
	if plan.Root == nil {
		return nil, fmt.Errorf("convert: sqlserver text: no plan found")
	}
	return plan, nil
}
