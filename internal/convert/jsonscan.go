package convert

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"uplan/internal/core"
)

// jsonScan is a streaming JSON token walker over an input string. The
// structured converters (PostgreSQL, MySQL, TiDB, MongoDB, Neo4j) feed
// core.Node construction directly from it, so a conversion never builds
// the intermediate map[string]any / []any trees that encoding/json's
// generic decoding allocates: object keys and escape-free strings are
// substrings of the input, scalars parse in place, and composite property
// values are captured as compacted raw JSON in a single pass.
//
// The scanner accepts exactly the JSON grammar (strict number syntax,
// escape validation, no control characters inside strings) so malformed
// input fails like the encoding/json path did instead of silently
// producing half a plan. It does not require EOF after the top-level
// value, matching json.Decoder.Decode; converters whose legacy decoder
// was json.Unmarshal call requireEOF explicitly. Two deliberate
// divergences from encoding/json: raw string bytes pass through without
// invalid-UTF-8 coercion to U+FFFD (JSON input is UTF-8 by spec; garbage
// bytes stay garbage instead of being silently rewritten), and composite
// property values keep their source key order and escaping (see
// scanRawCompact) rather than being re-marshaled.
type jsonScan struct {
	s     string
	pos   int
	depth int
	// ar, when non-nil, interns the strings the scanner must materialize
	// (escaped strings, re-compacted composites), so repeated dynamic
	// values across a batch share one canonical copy instead of retaining
	// a fresh build each. Zero-copy substrings bypass it: interning them
	// would add a copy rather than remove one.
	ar *core.PlanArena
}

// maxJSONDepth bounds object/array nesting, like encoding/json's decoder
// limit, so adversarial input exhausts neither the scanner's nor the
// node builders' recursion.
const maxJSONDepth = 10000

func newJSONScan(s string) jsonScan { return jsonScan{s: s} }

// errf reports a scan error with the current byte offset.
func (sc *jsonScan) errf(format string, args ...any) error {
	return fmt.Errorf("json offset %d: %s", sc.pos, fmt.Sprintf(format, args...))
}

var errJSONEOF = fmt.Errorf("json: unexpected end of input")

// skipSpace advances past insignificant whitespace. The indented JSON
// real engines emit is mostly whitespace, so this is the scanner's
// single hottest loop; it runs on locals and writes pos back once.
func (sc *jsonScan) skipSpace() {
	s, i := sc.s, sc.pos
	for i < len(s) {
		c := s[i]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			break
		}
		i++
	}
	sc.pos = i
}

// peek returns the first significant byte without consuming it, or 0 at
// end of input.
func (sc *jsonScan) peek() byte {
	sc.skipSpace()
	if sc.pos >= len(sc.s) {
		return 0
	}
	return sc.s[sc.pos]
}

// expect consumes the next significant byte, which must be c.
func (sc *jsonScan) expect(c byte) error {
	sc.skipSpace()
	if sc.pos >= len(sc.s) {
		return errJSONEOF
	}
	if sc.s[sc.pos] != c {
		return sc.errf("want %q, have %q", c, sc.s[sc.pos])
	}
	sc.pos++
	return nil
}

// scanObject parses an object, invoking fn once per key. fn must consume
// the key's value (scanValue, scanString, scanObject, scanArray,
// scanRawCompact, or skipValue).
//uplan:hotpath
func (sc *jsonScan) scanObject(fn func(key string) error) error {
	if err := sc.expect('{'); err != nil {
		return err
	}
	sc.depth++
	defer func() { sc.depth-- }()
	if sc.depth > maxJSONDepth {
		return sc.errf("exceeded max nesting depth")
	}
	if sc.peek() == '}' {
		sc.pos++
		return nil
	}
	for {
		key, err := sc.scanString()
		if err != nil {
			return err
		}
		if err := sc.expect(':'); err != nil {
			return err
		}
		if err := fn(key); err != nil {
			return err
		}
		sc.skipSpace()
		if sc.pos >= len(sc.s) {
			return errJSONEOF
		}
		switch sc.s[sc.pos] {
		case ',':
			sc.pos++
		case '}':
			sc.pos++
			return nil
		default:
			return sc.errf("want ',' or '}', have %q", sc.s[sc.pos])
		}
	}
}

// scanArray parses an array, invoking fn once per element with its index.
// fn must consume the element.
//uplan:hotpath
func (sc *jsonScan) scanArray(fn func(i int) error) error {
	if err := sc.expect('['); err != nil {
		return err
	}
	sc.depth++
	defer func() { sc.depth-- }()
	if sc.depth > maxJSONDepth {
		return sc.errf("exceeded max nesting depth")
	}
	if sc.peek() == ']' {
		sc.pos++
		return nil
	}
	for i := 0; ; i++ {
		if err := fn(i); err != nil {
			return err
		}
		sc.skipSpace()
		if sc.pos >= len(sc.s) {
			return errJSONEOF
		}
		switch sc.s[sc.pos] {
		case ',':
			sc.pos++
		case ']':
			sc.pos++
			return nil
		default:
			return sc.errf("want ',' or ']', have %q", sc.s[sc.pos])
		}
	}
}

// scanString parses a JSON string. Strings without escapes — the common
// case for both object keys and values — are returned as substrings of
// the input without allocating.
//uplan:hotpath
func (sc *jsonScan) scanString() (string, error) {
	if err := sc.expect('"'); err != nil {
		return "", err
	}
	s := sc.s
	start := sc.pos
	for i := start; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			sc.pos = i + 1
			return s[start:i], nil
		}
		if c == '\\' {
			sc.pos = i
			return sc.unescapeString(start)
		}
		if c < 0x20 {
			sc.pos = i
			return "", sc.errf("control character %#x in string", c)
		}
	}
	sc.pos = len(s)
	return "", errJSONEOF
}

// unescapeString handles the slow path of scanString: sc.pos sits on the
// first backslash, start marks the byte after the opening quote.
//uplan:hotpath
func (sc *jsonScan) unescapeString(start int) (string, error) {
	var b strings.Builder
	// Grow for the prefix plus a little slack — not the rest of the
	// document, which would pin a near-document-sized buffer behind
	// every short escaped string (Builder.String keeps the final
	// buffer). Longer strings regrow amortized.
	b.Grow(sc.pos - start + 64)
	b.WriteString(sc.s[start:sc.pos])
	for sc.pos < len(sc.s) {
		c := sc.s[sc.pos]
		switch {
		case c == '"':
			sc.pos++
			return sc.ar.Intern(b.String()), nil
		case c == '\\':
			sc.pos++
			if sc.pos >= len(sc.s) {
				return "", errJSONEOF
			}
			esc := sc.s[sc.pos]
			sc.pos++
			switch esc {
			case '"', '\\', '/':
				b.WriteByte(esc)
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case 'u':
				r, err := sc.scanHexRune()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// Like encoding/json: consume the following \u escape
					// only when it completes the pair; otherwise emit one
					// replacement rune and let the main loop reprocess the
					// second escape on its own, so the escape sequence
					// D800 D800 DC00 decodes to U+FFFD then U+10000.
					paired := false
					if sc.pos+1 < len(sc.s) && sc.s[sc.pos] == '\\' && sc.s[sc.pos+1] == 'u' {
						save := sc.pos
						sc.pos += 2
						r2, err := sc.scanHexRune()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							r, paired = dec, true
						} else {
							sc.pos = save
						}
					}
					if !paired {
						r = utf8.RuneError
					}
				}
				b.WriteRune(r)
			default:
				return "", sc.errf("invalid escape \\%c", esc)
			}
		case c < 0x20:
			return "", sc.errf("control character %#x in string", c)
		default:
			b.WriteByte(c)
			sc.pos++
		}
	}
	return "", errJSONEOF
}

// requireEOF errors unless only whitespace remains, for formats whose
// legacy decoder (json.Unmarshal) consumed the entire input and rejected
// trailing garbage. It checks the position directly — peek's 0 return
// would conflate a literal NUL byte with end of input.
func (sc *jsonScan) requireEOF() error {
	sc.skipSpace()
	if sc.pos < len(sc.s) {
		return sc.errf("trailing data after plan")
	}
	return nil
}

// scanHexRune reads the four hex digits of a \u escape.
func (sc *jsonScan) scanHexRune() (rune, error) {
	if sc.pos+4 > len(sc.s) {
		return 0, errJSONEOF
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := sc.s[sc.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, sc.errf("invalid \\u escape digit %q", c)
		}
	}
	sc.pos += 4
	return r, nil
}

// scanNumberLiteral validates and consumes a JSON number, returning its
// literal text as a substring of the input.
func (sc *jsonScan) scanNumberLiteral() (string, error) {
	sc.skipSpace()
	start := sc.pos
	i := sc.pos
	n := len(sc.s)
	if i < n && sc.s[i] == '-' {
		i++
	}
	switch {
	case i < n && sc.s[i] == '0':
		i++
	case i < n && sc.s[i] >= '1' && sc.s[i] <= '9':
		for i < n && sc.s[i] >= '0' && sc.s[i] <= '9' {
			i++
		}
	default:
		sc.pos = i
		return "", sc.errf("invalid number")
	}
	if i < n && sc.s[i] == '.' {
		i++
		if i >= n || sc.s[i] < '0' || sc.s[i] > '9' {
			sc.pos = i
			return "", sc.errf("invalid number: no digits after '.'")
		}
		for i < n && sc.s[i] >= '0' && sc.s[i] <= '9' {
			i++
		}
	}
	if i < n && (sc.s[i] == 'e' || sc.s[i] == 'E') {
		i++
		if i < n && (sc.s[i] == '+' || sc.s[i] == '-') {
			i++
		}
		if i >= n || sc.s[i] < '0' || sc.s[i] > '9' {
			sc.pos = i
			return "", sc.errf("invalid number: empty exponent")
		}
		for i < n && sc.s[i] >= '0' && sc.s[i] <= '9' {
			i++
		}
	}
	sc.pos = i
	return sc.s[start:i], nil
}

// scanLiteral consumes the keyword lit ("true", "false", "null").
func (sc *jsonScan) scanLiteral(lit string) error {
	sc.skipSpace()
	if !strings.HasPrefix(sc.s[sc.pos:], lit) {
		return sc.errf("invalid literal")
	}
	sc.pos += len(lit)
	return nil
}

// scanValue consumes any JSON value and converts it with the scalar
// semantics the map-based decoders used (scalarFromJSON): null → Null,
// booleans → Bool, numbers → Num (literal text kept when the value
// overflows float64), strings → parseScalar of the decoded text. A
// composite value (object or array) becomes a string of its compacted raw
// JSON — captured in one pass instead of the decode-then-re-Marshal round
// trip of the legacy path.
func (sc *jsonScan) scanValue() (core.Value, error) {
	switch sc.peek() {
	case 0:
		return core.Null(), errJSONEOF
	case 'n':
		return core.Null(), sc.scanLiteral("null")
	case 't':
		return core.BoolVal(true), sc.scanLiteral("true")
	case 'f':
		return core.BoolVal(false), sc.scanLiteral("false")
	case '"':
		s, err := sc.scanString()
		if err != nil {
			return core.Null(), err
		}
		return parseScalar(s), nil
	case '{', '[':
		raw, err := sc.scanRawCompact()
		if err != nil {
			return core.Null(), err
		}
		return core.Str(raw), nil
	default:
		lit, err := sc.scanNumberLiteral()
		if err != nil {
			return core.Null(), err
		}
		f, perr := strconv.ParseFloat(lit, 64)
		if perr != nil {
			return core.Str(lit), nil
		}
		return core.Num(f), nil
	}
}

// scanStringValue consumes the next value. If it is a JSON string it
// returns (decoded, true); any other valid value is consumed and reported
// as (_, false), mirroring the legacy decoders' ignored type assertions.
func (sc *jsonScan) scanStringValue() (string, bool, error) {
	if sc.peek() == '"' {
		s, err := sc.scanString()
		return s, err == nil, err
	}
	return "", false, sc.skipValue()
}

// skipValue consumes and validates any JSON value without materializing it.
func (sc *jsonScan) skipValue() error {
	switch sc.peek() {
	case 0:
		return errJSONEOF
	case 'n':
		return sc.scanLiteral("null")
	case 't':
		return sc.scanLiteral("true")
	case 'f':
		return sc.scanLiteral("false")
	case '"':
		_, err := sc.scanString()
		return err
	case '{':
		return sc.scanObject(func(string) error { return sc.skipValue() })
	case '[':
		return sc.scanArray(func(int) error { return sc.skipValue() })
	default:
		_, err := sc.scanNumberLiteral()
		return err
	}
}

// scanRawCompact consumes the next composite value and returns its raw
// JSON with insignificant whitespace removed. When the input is already
// compact the result is a substring and nothing is copied.
func (sc *jsonScan) scanRawCompact() (string, error) {
	sc.skipSpace()
	start := sc.pos
	if err := sc.skipValue(); err != nil {
		return "", err
	}
	raw := sc.s[start:sc.pos]
	if !hasJSONSpace(raw) {
		return raw, nil
	}
	var b strings.Builder
	b.Grow(len(raw))
	inString := false
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if inString {
			b.WriteByte(c)
			if c == '\\' {
				// Copy the escaped byte verbatim; skipValue already
				// validated the escape sequence.
				i++
				if i < len(raw) {
					b.WriteByte(raw[i])
				}
			} else if c == '"' {
				inString = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '"':
			inString = true
		}
		b.WriteByte(c)
	}
	return sc.ar.Intern(b.String()), nil
}

// hasJSONSpace reports whether s contains any byte scanRawCompact would
// strip outside of strings; a quick scan that tolerates false positives
// (whitespace inside strings just means one extra copy).
func hasJSONSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			return true
		}
	}
	return false
}
