package convert

import (
	"strings"
	"testing"

	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/explain"
)

// engine creates a seeded engine for converter round-trip tests.
func engine(t testing.TB, name string) *dbms.Engine {
	t.Helper()
	e := dbms.MustNew(name)
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
		"CREATE TABLE t1 (c0 INT, v TEXT)",
		"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a')",
		"INSERT INTO t1 VALUES (1, 'x'), (3, 'y')",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatalf("%s: seed: %v", name, err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	return e
}

const testQuery = "SELECT t0.c2, COUNT(*) FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c1 > 5 GROUP BY t0.c2 ORDER BY t0.c2 LIMIT 10"

// TestEndToEndAllEnginesAllFormats is the central integration test: every
// engine's every supported native format must convert into a valid unified
// plan.
func TestEndToEndAllEnginesAllFormats(t *testing.T) {
	for _, name := range dbms.Names() {
		e := engine(t, name)
		for _, f := range e.SupportedFormats() {
			if f == explain.FormatGraph {
				continue // DOT stands in for IDE graphs; not a converter input
			}
			serialized, err := e.Explain(testQuery, f)
			if err != nil {
				t.Fatalf("%s/%s: explain: %v", name, f, err)
			}
			plan, err := Convert(name, serialized)
			if err != nil {
				t.Fatalf("%s/%s: convert: %v\ninput:\n%s", name, f, err, serialized)
			}
			if err := plan.Validate(); err != nil {
				t.Errorf("%s/%s: invalid unified plan: %v", name, f, err)
			}
			if plan.Source != name {
				t.Errorf("%s/%s: source = %q", name, f, plan.Source)
			}
			if name != "influxdb" && plan.Root == nil {
				t.Errorf("%s/%s: no operations parsed\ninput:\n%s", name, f, serialized)
			}
			if name == "influxdb" && plan.Root != nil {
				t.Errorf("influxdb must be property-only")
			}
		}
	}
}

func TestPostgresTextConversion(t *testing.T) {
	e := engine(t, "postgresql")
	out, err := e.Explain(testQuery, explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("postgresql", out)
	if err != nil {
		t.Fatalf("convert: %v\n%s", err, out)
	}
	h := plan.Histogram()
	if h[core.Producer] < 2 {
		t.Errorf("expected ≥2 producers, histogram %v\n%s", h, out)
	}
	if h[core.Folder] < 1 {
		t.Errorf("expected an aggregation, histogram %v", h)
	}
	if h[core.Projector] != 0 {
		t.Errorf("PostgreSQL has no projector operations, got %v", h[core.Projector])
	}
	if _, ok := plan.Property("planning time"); !ok {
		t.Error("planning time plan property missing")
	}
	// Estimated rows must resolve for CERT.
	if _, ok := plan.RootCardinality(); !ok {
		t.Error("no root cardinality")
	}
}

func TestPostgresTextAndJSONAgreeOnStructure(t *testing.T) {
	e := engine(t, "postgresql")
	text, err := e.Explain(testQuery, explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	jsonOut, err := e.Explain(testQuery, explain.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	pText, err := Convert("postgresql", text)
	if err != nil {
		t.Fatal(err)
	}
	pJSON, err := Convert("postgresql", jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if pText.Fingerprint(core.FingerprintOptions{}) != pJSON.Fingerprint(core.FingerprintOptions{}) {
		t.Errorf("text and JSON conversions disagree:\ntext:\n%s\njson:\n%s",
			pText.MarshalIndentedText(), pJSON.MarshalIndentedText())
	}
}

func TestTiDBSelectionFolding(t *testing.T) {
	e := engine(t, "tidb")
	out, err := e.Explain("SELECT c1 FROM t0 WHERE c1 > 5", explain.FormatTable)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("tidb", out)
	if err != nil {
		t.Fatalf("convert: %v\n%s", err, out)
	}
	// The paper's Figure 2 special case: Selection becomes a property of
	// the scan, so the plan is Projection → Collect → Full Table Scan with
	// a filter property, not a Filter operation.
	plan.Walk(func(n *core.Node, _ int) {
		if n.Op.Name == "Filter" {
			t.Errorf("TiDB Selection must fold into a property:\n%s",
				plan.MarshalIndentedText())
		}
	})
	foundFilterProp := false
	plan.Walk(func(n *core.Node, _ int) {
		if n.Op.Category == core.Producer {
			if _, ok := n.Property("filter"); ok {
				foundFilterProp = true
			}
		}
	})
	if !foundFilterProp {
		t.Errorf("scan should carry the folded filter property:\n%s",
			plan.MarshalIndentedText())
	}
	// Unstable operator IDs live in Status, invisible to fingerprints.
	fp1 := plan.Fingerprint(core.FingerprintOptions{IncludeConfiguration: true})
	out2, _ := e.Explain("SELECT c1 FROM t0 WHERE c1 > 5", explain.FormatTable)
	plan2, err := Convert("tidb", out2)
	if err != nil {
		t.Fatal(err)
	}
	fp2 := plan2.Fingerprint(core.FingerprintOptions{IncludeConfiguration: true})
	if fp1 != fp2 {
		t.Errorf("fingerprints must ignore unstable TiDB identifiers:\n%s\nvs\n%s",
			plan.MarshalIndentedText(), plan2.MarshalIndentedText())
	}
}

func TestFigure2UnifiedShapes(t *testing.T) {
	// Paper Figure 2: EXPLAIN SELECT * FROM t0 WHERE c0 < 5 converts to
	// Producer->Full Table Scan for PostgreSQL/MySQL, and to
	// Executor->Collect over Producer->Full Table Scan for TiDB.
	q := "SELECT * FROM t0 WHERE c1 < 5"
	pg := engine(t, "postgresql")
	out, err := pg.Explain(q, explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("postgresql", out)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "Full Table Scan" || plan.Root.Op.Category != core.Producer {
		t.Errorf("postgres root = %v, want Producer->Full Table Scan\n%s",
			plan.Root.Op, plan.MarshalIndentedText())
	}

	ti := engine(t, "tidb")
	out, err = ti.Explain(q, explain.FormatTable)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = Convert("tidb", out)
	if err != nil {
		t.Fatal(err)
	}
	// TiDB: Projection → Collect → Full Table Scan (Selection folded).
	var ops []string
	plan.Walk(func(n *core.Node, _ int) {
		ops = append(ops, string(n.Op.Category)+"->"+n.Op.Name)
	})
	joined := strings.Join(ops, " | ")
	if !strings.Contains(joined, "Executor->Collect") ||
		!strings.Contains(joined, "Producer->Full Table Scan") {
		t.Errorf("tidb ops = %s", joined)
	}
}

func TestSQLiteListing1Style(t *testing.T) {
	in := "`--COMPOUND QUERY\n" +
		"   |--LEFT-MOST SUBQUERY\n" +
		"   |  |--SCAN t0\n" +
		"   |  |--SEARCH t1 USING AUTOMATIC COVERING INDEX (c0=?)\n" +
		"   |  `--USE TEMP B-TREE FOR GROUP BY\n" +
		"   `--UNION USING TEMP B-TREE\n" +
		"      `--SEARCH t2 USING COVERING INDEX sqlite_autoindex_t2_1 (c0<?)\n"
	plan, err := Convert("sqlite", in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "Append" { // COMPOUND QUERY → Append
		t.Errorf("root = %v", plan.Root.Op)
	}
	h := plan.Histogram()
	if h[core.Producer] != 3 {
		t.Errorf("producers = %v, want 3 (SCAN + 2 SEARCH)\n%s",
			h[core.Producer], plan.MarshalIndentedText())
	}
	if h[core.Combinator] < 2 {
		t.Errorf("combinators = %v, want ≥2 (COMPOUND + UNION)", h[core.Combinator])
	}
}

func TestMongoConversion(t *testing.T) {
	e := engine(t, "mongodb")
	out, err := e.Explain("SELECT c1, c2 FROM t0 WHERE c1 > 5", explain.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("mongodb", out)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "Project" || plan.Root.Op.Category != core.Projector {
		t.Errorf("mongo root = %v", plan.Root.Op)
	}
	scan := plan.Root.Children[0]
	if scan.Op.Name != "Collection Scan" || scan.Op.Category != core.Producer {
		t.Errorf("mongo scan = %v", scan.Op)
	}
	if plan.NodeCount() != 2 {
		t.Errorf("mongo plan size = %d, want 2 (paper Table VI)", plan.NodeCount())
	}
}

func TestNeo4jConversion(t *testing.T) {
	e := engine(t, "neo4j")
	out, err := e.Explain(testQuery, explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("neo4j", out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if plan.Root.Op.Name != "Produce Results" || plan.Root.Op.Category != core.Projector {
		t.Errorf("neo4j root = %v", plan.Root.Op)
	}
	h := plan.Histogram()
	if h[core.Join] == 0 {
		t.Errorf("joined query should traverse relationships (Join ops): %v\n%s",
			h, plan.MarshalIndentedText())
	}
	if _, ok := plan.Property("database accesses"); !ok {
		t.Error("database accesses plan property missing")
	}
}

func TestSparkConversion(t *testing.T) {
	e := engine(t, "sparksql")
	out, err := e.Explain("SELECT c2, SUM(c1) FROM t0 GROUP BY c2", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("sparksql", out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	h := plan.Histogram()
	if h[core.Executor] < 3 {
		t.Errorf("spark plans are executor-heavy, got %v\n%s", h, plan.MarshalIndentedText())
	}
	if h[core.Folder] < 2 {
		t.Errorf("partial+final aggregation expected, got %v", h)
	}
}

func TestSQLServerXMLConversion(t *testing.T) {
	e := engine(t, "sqlserver")
	out, err := e.Explain(testQuery, explain.FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("sqlserver", out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if plan.NodeCount() < 4 {
		t.Errorf("sqlserver plan too small:\n%s", plan.MarshalIndentedText())
	}
	if _, ok := plan.RootCardinality(); !ok {
		t.Error("EstimateRows should convert into cardinality")
	}
}

func TestInfluxConversion(t *testing.T) {
	e := engine(t, "influxdb")
	out, err := e.Explain("SELECT c1 FROM t0", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("influxdb", out)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root != nil {
		t.Error("influx plans have no operations")
	}
	if len(plan.Properties) < 5 {
		t.Errorf("influx properties = %d", len(plan.Properties))
	}
	if _, ok := plan.RootCardinality(); !ok {
		t.Error("NUMBER OF SERIES should map to a cardinality property")
	}
}

func TestConverterErrors(t *testing.T) {
	if _, err := Convert("oracle", "x"); err == nil {
		t.Error("unknown dialect must fail")
	}
	bad := map[string]string{
		"postgresql": "not a plan at all",
		"tidb":       "no table here",
		"mongodb":    `{"notQueryPlanner": 1}`,
		"sqlserver":  "<xml>wrong</xml>",
		"sqlite":     "",
		"influxdb":   "",
	}
	for dialect, in := range bad {
		if _, err := Convert(dialect, in); err == nil {
			t.Errorf("%s: expected error for %q", dialect, in)
		}
	}
}

func TestDialectsComplete(t *testing.T) {
	if len(Dialects()) != 9 {
		t.Errorf("converters = %d, want 9", len(Dialects()))
	}
	for _, d := range dbms.Names() {
		if _, err := For(d, nil); err != nil {
			t.Errorf("missing converter for %s", d)
		}
	}
}

func TestUnknownOperationsSurviveConversion(t *testing.T) {
	// Extensibility: an operator the registry has never seen converts to a
	// generic Executor operation instead of failing.
	in := "Quantum Scan on t0  (cost=0.00..1.00 rows=1 width=4)\n"
	plan, err := Convert("postgresql", in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Category != core.Executor || plan.Root.Op.Name != "Quantum Scan" {
		t.Errorf("unknown op = %v", plan.Root.Op)
	}
}
