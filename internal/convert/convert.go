// Package convert implements UPlan's converters: parsers that turn a
// DBMS-native *serialized* query plan (the text/table/JSON/XML strings a
// real system prints for EXPLAIN) into the unified query plan
// representation of internal/core. One converter exists per studied DBMS,
// mirroring the paper's five ~200-line converters and extending them to
// all nine systems.
package convert

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uplan/internal/core"
)

// Converter parses serialized plans of one dialect.
type Converter interface {
	// Dialect returns the engine key ("postgresql", …).
	Dialect() string
	// Convert parses a serialized plan. The format hint may be empty, in
	// which case the converter auto-detects among its supported formats.
	Convert(serialized string) (*core.Plan, error)
}

// ArenaConverter is implemented by converters whose construction path is
// arena-native: ConvertIn builds the plan's nodes, property lists, and
// child lists inside the caller-supplied arena (see core.PlanArena for the
// ownership rules — the plan aliases the arena until Plan.Clone detaches
// it). A nil arena builds a plain heap plan. All nine built-in converters
// implement it; Convert(s) is ConvertIn(s, fresh arena) throughout, so the
// one-shot path batches its allocations too.
type ArenaConverter interface {
	Converter
	ConvertIn(serialized string, ar *core.PlanArena) (*core.Plan, error)
}

// ConvertInto parses a serialized plan into the caller-supplied arena
// through the process-wide cached converter for the dialect. The returned
// plan aliases the arena: it stays valid until the arena is Reset, and
// must be detached with Plan.Clone if it needs to outlive that. A nil
// arena behaves like Cached(dialect).Convert.
func ConvertInto(dialect, serialized string, ar *core.PlanArena) (*core.Plan, error) {
	c, err := Cached(dialect)
	if err != nil {
		return nil, err
	}
	ac, ok := c.(ArenaConverter)
	if !ok {
		// Mirrors the pipeline's fallback: a converter without an arena
		// path still converts, it just ignores the caller's arena.
		return c.Convert(serialized)
	}
	if ar == nil {
		return convertPooled(ac, serialized)
	}
	return ac.ConvertIn(serialized, ar)
}

// arenaPool recycles plan arenas behind the one-shot Convert path. Each
// Convert borrows an arena, builds the plan in it, detaches the plan with
// the compact Plan.Clone, resets, and returns the arena — so even callers
// that never manage an arena get slab-batched construction plus an
// exactly-sized result, at the cost of one tree copy. Pooled arenas keep
// their grown slabs (and intern tables) across conversions; the pool
// releases them under GC pressure like any sync.Pool.
var arenaPool = sync.Pool{New: func() any { return core.NewPlanArena() }}

// convertPooled is the shared implementation of the converters' one-shot
// Convert methods: ConvertIn into a pooled arena, detach, recycle.
//uplan:hotpath
func convertPooled(c ArenaConverter, serialized string) (*core.Plan, error) {
	ar := arenaPool.Get().(*core.PlanArena)
	p, err := c.ConvertIn(serialized, ar)
	if p != nil {
		p = p.Clone() // detach before the arena is reused
	}
	ar.Reset()
	arenaPool.Put(ar)
	return p, err
}

// registry of converters, keyed by dialect.
var converters = map[string]func(reg *core.Registry) Converter{
	"postgresql": func(r *core.Registry) Converter { return &postgresConverter{reg: r} },
	"mysql":      func(r *core.Registry) Converter { return &mysqlConverter{reg: r} },
	"tidb":       func(r *core.Registry) Converter { return &tidbConverter{reg: r} },
	"sqlite":     func(r *core.Registry) Converter { return &sqliteConverter{reg: r} },
	"mongodb":    func(r *core.Registry) Converter { return &mongoConverter{reg: r} },
	"neo4j":      func(r *core.Registry) Converter { return &neo4jConverter{reg: r} },
	"sparksql":   func(r *core.Registry) Converter { return &sparkConverter{reg: r} },
	"sqlserver":  func(r *core.Registry) Converter { return &sqlserverConverter{reg: r} },
	"influxdb":   func(r *core.Registry) Converter { return &influxConverter{reg: r} },
}

// For returns the converter for a dialect, backed by the given registry
// (nil uses the default registry).
func For(dialect string, reg *core.Registry) (Converter, error) {
	if reg == nil {
		reg = core.DefaultRegistry()
	}
	mk, ok := converters[strings.ToLower(dialect)]
	if !ok {
		return nil, fmt.Errorf("convert: no converter for dialect %q", dialect)
	}
	return mk(reg), nil
}

// Dialects lists the supported dialect keys in sorted order.
func Dialects() []string {
	out := make([]string, 0, len(converters))
	for k := range converters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Convert is a convenience wrapper: one-shot conversion with the default
// registry. It builds a fresh registry and converter per call; hot paths
// should use Cached (single plans) or internal/pipeline (batches).
func Convert(dialect, serialized string) (*core.Plan, error) {
	c, err := For(dialect, nil)
	if err != nil {
		return nil, err
	}
	return c.Convert(serialized)
}

// ----------------------------------------------------- cached converters

var (
	sharedRegOnce sync.Once
	sharedReg     *core.Registry

	cacheMu sync.RWMutex
	cache   = map[string]Converter{}
)

// SharedRegistry returns the lazily-built process-wide default registry
// backing the Cached converters. Extending it (AddOperation,
// AliasOperation, …) immediately affects every cached converter; callers
// needing isolation should pair For with their own registry instead.
func SharedRegistry() *core.Registry {
	sharedRegOnce.Do(func() { sharedReg = core.DefaultRegistry() })
	return sharedReg
}

// Cached returns the process-wide shared converter for a dialect, backed
// by SharedRegistry. Converters hold no per-conversion state and the
// registry resolves names from an immutable lock-free snapshot, so the
// returned converter is safe for concurrent use and scales across worker
// goroutines without serializing on a registry lock. This is the fast
// path behind the uplan facade: it avoids rebuilding the default registry
// on every conversion.
func Cached(dialect string) (Converter, error) {
	key := strings.ToLower(dialect)
	cacheMu.RLock()
	c, ok := cache[key]
	cacheMu.RUnlock()
	if ok {
		return c, nil
	}
	c, err := For(key, SharedRegistry())
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	if prior, ok := cache[key]; ok {
		c = prior // another goroutine won the build race; share its converter
	} else {
		cache[key] = c
	}
	cacheMu.Unlock()
	return c, nil
}

// ------------------------------------------------------------ shared bits

// parseScalar converts a property value string to a core.Value, detecting
// numbers and booleans.
//uplan:hotpath
func parseScalar(s string) core.Value {
	t := strings.TrimSpace(s)
	switch t {
	case "":
		return core.Null()
	case "true", "TRUE", "True":
		return core.BoolVal(true)
	case "false", "FALSE", "False":
		return core.BoolVal(false)
	case "null", "NULL":
		return core.Null()
	}
	if looksNumeric(t) {
		if f, err := strconv.ParseFloat(t, 64); err == nil {
			return core.Num(f)
		}
	}
	return core.Str(t)
}

// looksNumeric cheaply rejects strings ParseFloat would reject. ParseFloat
// allocates its syntax error, and most property values are not numbers, so
// without this filter the error construction alone was ~13% of the batch
// path's allocations. The byte set is a superset of every literal
// ParseFloat accepts (digits, sign/exponent/hex punctuation, and the
// letters of inf/infinity/nan in either case), so no valid number is ever
// filtered out — only guaranteed failures skip the call.
//uplan:hotpath
func looksNumeric(t string) bool {
	if len(t) == 0 {
		return false
	}
	switch c := t[0]; {
	case c >= '0' && c <= '9':
	case c == '+' || c == '-' || c == '.':
	case c == 'i' || c == 'I' || c == 'n' || c == 'N': // inf / nan
	default:
		return false
	}
	for i := 1; i < len(t); i++ {
		switch c := t[i]; {
		case c >= '0' && c <= '9':
		case c == '+' || c == '-' || c == '.' || c == '_':
		case c == 'e' || c == 'E' || c == 'x' || c == 'X' || c == 'p' || c == 'P':
		case c == 'i' || c == 'I' || c == 'n' || c == 'N' || c == 'f' || c == 'F':
		case c == 'a' || c == 'A' || c == 't' || c == 'T' || c == 'y' || c == 'Y':
		case c == 'b' || c == 'B' || c == 'c' || c == 'C' || c == 'd' || c == 'D': // hex digits
		default:
			return false
		}
	}
	return true
}

// addProp resolves a native property name through the registry and appends
// it to the node, allocating from ar when non-nil.
func addProp(reg *core.Registry, dialect string, ar *core.PlanArena, n *core.Node, nativeKey, rawVal string) {
	name, cat := reg.ResolveProperty(dialect, nativeKey)
	ar.AddPropertyIn(n, cat, name, parseScalar(rawVal))
}

// addTypedProp appends a property with an explicit category override,
// allocating from ar when non-nil.
func addTypedProp(ar *core.PlanArena, n *core.Node, cat core.PropertyCategory, name string, v core.Value) {
	ar.AddPropertyIn(n, cat, name, v)
}

// addPlanProp resolves and appends a plan-level property, allocating from
// ar when non-nil.
func addPlanProp(reg *core.Registry, dialect string, ar *core.PlanArena, p *core.Plan, nativeKey, rawVal string) {
	name, cat := reg.ResolveProperty(dialect, nativeKey)
	ar.AddPlanPropertyIn(p, cat, name, parseScalar(rawVal))
}

// indentDepth counts leading spaces.
func indentDepth(s string) int {
	n := 0
	for n < len(s) && s[n] == ' ' {
		n++
	}
	return n
}

// stripOperatorSuffix removes TiDB-style unstable "_NN" suffixes and
// returns the base name plus the suffix (empty when none).
func stripOperatorSuffix(id string) (string, string) {
	i := strings.LastIndexByte(id, '_')
	if i < 0 {
		return id, ""
	}
	suffix := id[i+1:]
	if suffix == "" {
		return id, ""
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return id, ""
		}
	}
	return id[:i], suffix
}
