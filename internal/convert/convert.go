// Package convert implements UPlan's converters: parsers that turn a
// DBMS-native *serialized* query plan (the text/table/JSON/XML strings a
// real system prints for EXPLAIN) into the unified query plan
// representation of internal/core. One converter exists per studied DBMS,
// mirroring the paper's five ~200-line converters and extending them to
// all nine systems.
package convert

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uplan/internal/core"
)

// Converter parses serialized plans of one dialect.
type Converter interface {
	// Dialect returns the engine key ("postgresql", …).
	Dialect() string
	// Convert parses a serialized plan. The format hint may be empty, in
	// which case the converter auto-detects among its supported formats.
	Convert(serialized string) (*core.Plan, error)
}

// registry of converters, keyed by dialect.
var converters = map[string]func(reg *core.Registry) Converter{
	"postgresql": func(r *core.Registry) Converter { return &postgresConverter{reg: r} },
	"mysql":      func(r *core.Registry) Converter { return &mysqlConverter{reg: r} },
	"tidb":       func(r *core.Registry) Converter { return &tidbConverter{reg: r} },
	"sqlite":     func(r *core.Registry) Converter { return &sqliteConverter{reg: r} },
	"mongodb":    func(r *core.Registry) Converter { return &mongoConverter{reg: r} },
	"neo4j":      func(r *core.Registry) Converter { return &neo4jConverter{reg: r} },
	"sparksql":   func(r *core.Registry) Converter { return &sparkConverter{reg: r} },
	"sqlserver":  func(r *core.Registry) Converter { return &sqlserverConverter{reg: r} },
	"influxdb":   func(r *core.Registry) Converter { return &influxConverter{reg: r} },
}

// For returns the converter for a dialect, backed by the given registry
// (nil uses the default registry).
func For(dialect string, reg *core.Registry) (Converter, error) {
	if reg == nil {
		reg = core.DefaultRegistry()
	}
	mk, ok := converters[strings.ToLower(dialect)]
	if !ok {
		return nil, fmt.Errorf("convert: no converter for dialect %q", dialect)
	}
	return mk(reg), nil
}

// Dialects lists the supported dialect keys in sorted order.
func Dialects() []string {
	out := make([]string, 0, len(converters))
	for k := range converters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Convert is a convenience wrapper: one-shot conversion with the default
// registry. It builds a fresh registry and converter per call; hot paths
// should use Cached (single plans) or internal/pipeline (batches).
func Convert(dialect, serialized string) (*core.Plan, error) {
	c, err := For(dialect, nil)
	if err != nil {
		return nil, err
	}
	return c.Convert(serialized)
}

// ----------------------------------------------------- cached converters

var (
	sharedRegOnce sync.Once
	sharedReg     *core.Registry

	cacheMu sync.RWMutex
	cache   = map[string]Converter{}
)

// SharedRegistry returns the lazily-built process-wide default registry
// backing the Cached converters. Extending it (AddOperation,
// AliasOperation, …) immediately affects every cached converter; callers
// needing isolation should pair For with their own registry instead.
func SharedRegistry() *core.Registry {
	sharedRegOnce.Do(func() { sharedReg = core.DefaultRegistry() })
	return sharedReg
}

// Cached returns the process-wide shared converter for a dialect, backed
// by SharedRegistry. Converters hold no per-conversion state and the
// registry resolves names from an immutable lock-free snapshot, so the
// returned converter is safe for concurrent use and scales across worker
// goroutines without serializing on a registry lock. This is the fast
// path behind the uplan facade: it avoids rebuilding the default registry
// on every conversion.
func Cached(dialect string) (Converter, error) {
	key := strings.ToLower(dialect)
	cacheMu.RLock()
	c, ok := cache[key]
	cacheMu.RUnlock()
	if ok {
		return c, nil
	}
	c, err := For(key, SharedRegistry())
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	if prior, ok := cache[key]; ok {
		c = prior // another goroutine won the build race; share its converter
	} else {
		cache[key] = c
	}
	cacheMu.Unlock()
	return c, nil
}

// ------------------------------------------------------------ shared bits

// parseScalar converts a property value string to a core.Value, detecting
// numbers and booleans.
func parseScalar(s string) core.Value {
	t := strings.TrimSpace(s)
	switch t {
	case "":
		return core.Null()
	case "true", "TRUE", "True":
		return core.BoolVal(true)
	case "false", "FALSE", "False":
		return core.BoolVal(false)
	case "null", "NULL":
		return core.Null()
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return core.Num(f)
	}
	return core.Str(t)
}

// addProp resolves a native property name through the registry and appends
// it to the node.
func addProp(reg *core.Registry, dialect string, n *core.Node, nativeKey, rawVal string) {
	name, cat := reg.ResolveProperty(dialect, nativeKey)
	n.Properties = append(n.Properties, core.Property{
		Category: cat, Name: name, Value: parseScalar(rawVal),
	})
}

// addTypedProp appends a property with an explicit category override.
func addTypedProp(n *core.Node, cat core.PropertyCategory, name string, v core.Value) {
	n.Properties = append(n.Properties, core.Property{Category: cat, Name: name, Value: v})
}

// addPlanProp resolves and appends a plan-level property.
func addPlanProp(reg *core.Registry, dialect string, p *core.Plan, nativeKey, rawVal string) {
	name, cat := reg.ResolveProperty(dialect, nativeKey)
	p.Properties = append(p.Properties, core.Property{
		Category: cat, Name: name, Value: parseScalar(rawVal),
	})
}

// indentDepth counts leading spaces.
func indentDepth(s string) int {
	n := 0
	for n < len(s) && s[n] == ' ' {
		n++
	}
	return n
}

// stripOperatorSuffix removes TiDB-style unstable "_NN" suffixes and
// returns the base name plus the suffix (empty when none).
func stripOperatorSuffix(id string) (string, string) {
	i := strings.LastIndexByte(id, '_')
	if i < 0 {
		return id, ""
	}
	suffix := id[i+1:]
	if suffix == "" {
		return id, ""
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return id, ""
		}
	}
	return id[:i], suffix
}
