package convert

import (
	"strings"
	"testing"

	"uplan/internal/core"
	"uplan/internal/explain"
)

func TestJSONScanScalars(t *testing.T) {
	cases := []struct {
		in   string
		want core.Value
	}{
		{`null`, core.Null()},
		{`true`, core.BoolVal(true)},
		{`false`, core.BoolVal(false)},
		{`42`, core.Num(42)},
		{`-3.25e2`, core.Num(-325)},
		{`"hello"`, core.Str("hello")},
		// Strings run through parseScalar, like the legacy decoders.
		{`"17"`, core.Num(17)},
		{`"true"`, core.BoolVal(true)},
		{`"  spaced  "`, core.Str("spaced")},
		// Escapes decode, including surrogate pairs.
		{`"a\tbé😀"`, core.Str("a\tbé\U0001F600")},
		{`"😀"`, core.Str("\U0001F600")},
		// A failed pair consumes only the first escape, like
		// encoding/json: D800 D800 DC00 → U+FFFD then U+10000.
		{`"\uD800\uD800\uDC00"`, core.Str("\uFFFD\U00010000")},
		{`"\uDC00"`, core.Str("�")},
		// Composite values become compact raw JSON.
		{`[1, 2,  3]`, core.Str(`[1,2,3]`)},
		{"{\n  \"a\": \"x y\",\n  \"b\": [true]\n}", core.Str(`{"a":"x y","b":[true]}`)},
	}
	for _, c := range cases {
		sc := newJSONScan(c.in)
		got, err := sc.scanValue()
		if err != nil {
			t.Errorf("scanValue(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("scanValue(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestJSONScanMalformed(t *testing.T) {
	bad := []string{
		``, `{`, `[`, `{"a"`, `{"a":}`, `{"a":1,}`, `[1,]`, `{"a" 1}`,
		`{1: 2}`, `"unterminated`, `"bad \q escape"`, `"\u12"`, `"\u12zz"`,
		`nul`, `tru`, `1.`, `.5`, `-`, `1e`, `1e+`,
		"\"ctrl\x01char\"", `{"a": 01}`, `[0123]`,
		strings.Repeat("[", 20000),
	}
	for _, s := range bad {
		sc := newJSONScan(s)
		if err := sc.skipValue(); err == nil {
			t.Errorf("skipValue(%.20q): expected error", s)
		}
	}
}

func TestJSONScanObjectWalk(t *testing.T) {
	sc := newJSONScan(`{"a": 1, "b": {"c": [true, null]}, "d": "x"}`)
	var keys []string
	err := sc.scanObject(func(key string) error {
		keys = append(keys, key)
		return sc.skipValue()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(keys, ","); got != "a,b,d" {
		t.Errorf("keys = %s", got)
	}
}

// TestTiDBJSONRejectsTrailingGarbage pins the json.Unmarshal-compatible
// strictness the streaming TiDB decoder keeps: anything after the plan
// value is an error, unlike the Decode-style converters.
func TestTiDBJSONRejectsTrailingGarbage(t *testing.T) {
	c, err := Cached("tidb")
	if err != nil {
		t.Fatal(err)
	}
	good := `[{"id": "HashAgg_1", "estRows": "3.60"}]`
	if _, err := c.Convert(good); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if _, err := c.Convert(good + ` , garbage`); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestJSONScanKeysDoNotAllocate pins the fast path: escape-free strings
// are substrings of the input.
func TestJSONScanKeysDoNotAllocate(t *testing.T) {
	in := `"plain key"`
	if avg := testing.AllocsPerRun(200, func() {
		sc := newJSONScan(in)
		if _, err := sc.scanString(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("scanString fast path: %v allocs/op, want 0", avg)
	}
}

// BenchmarkDecodeJSON compares the streaming decoder against the
// retained legacy map[string]any path on a real PostgreSQL JSON plan.
func BenchmarkDecodeJSON(b *testing.B) {
	e := engine(b, "postgresql")
	out, err := e.Explain(testQuery, explain.FormatJSON)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Cached("postgresql")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Convert(out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LegacyConvert("postgresql", out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
