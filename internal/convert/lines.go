package convert

import "strings"

// lineIter iterates the newline-separated lines of a string in place. It
// yields exactly the segments strings.Split(s, "\n") would — including a
// final empty segment when the input ends with a newline — but without
// allocating the backing []string, which every text-format converter used
// to pay once per plan.
type lineIter struct {
	rest string
	line string
	n    int
	done bool
}

func newLineIter(s string) lineIter { return lineIter{rest: s} }

// next advances to the next line, reporting whether one was produced. The
// current line is in line; n is its 1-based line number.
func (it *lineIter) next() bool {
	if it.done {
		return false
	}
	if i := strings.IndexByte(it.rest, '\n'); i >= 0 {
		it.line = it.rest[:i]
		it.rest = it.rest[i+1:]
	} else {
		it.line, it.rest, it.done = it.rest, "", true
	}
	it.n++
	return true
}
