package convert

import (
	"testing"

	"uplan/internal/core"
	"uplan/internal/explain"
)

// arenaGuardSamples builds one serialized plan per representative format
// family for the allocation guards below.
func arenaGuardSamples(t *testing.T) map[string]string {
	t.Helper()
	samples := map[string]string{}
	e := engine(t, "postgresql")
	for key, f := range map[string]explain.Format{
		"postgresql-text": explain.FormatText,
		"postgresql-json": explain.FormatJSON,
	} {
		out, err := e.Explain(testQuery, f)
		if err != nil {
			t.Fatal(err)
		}
		samples[key] = out
	}
	ti := engine(t, "tidb")
	out, err := ti.Explain(testQuery, explain.FormatTable)
	if err != nil {
		t.Fatal(err)
	}
	samples["tidb-table"] = out
	return samples
}

func dialectOf(key string) string {
	switch key {
	case "tidb-table":
		return "tidb"
	default:
		return "postgresql"
	}
}

// TestConvertIntoMatchesConvert proves the arena path is semantically
// inert: for each format family, converting into a reused arena yields a
// plan equal to the plain Convert result.
func TestConvertIntoMatchesConvert(t *testing.T) {
	ar := core.NewPlanArena()
	for key, raw := range arenaGuardSamples(t) {
		dialect := dialectOf(key)
		want, err := Convert(dialect, raw)
		if err != nil {
			t.Fatalf("%s: convert: %v", key, err)
		}
		ar.Reset()
		got, err := ConvertInto(dialect, raw, ar)
		if err != nil {
			t.Fatalf("%s: convert into arena: %v", key, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: arena plan differs from heap plan", key)
		}
	}
}

// TestConvertIntoSteadyStateAllocs guards the arena decode paths: once the
// worker's arena has warmed up, converting the same plan again must stay
// within a small constant allocation budget — the *Plan header plus
// whatever scratch the specific parser needs (table parsers build per-row
// cell slices; everything else is zero-copy). A regression here means an
// allocation crept back into a per-node or per-property code path, where
// it would scale with plan size again.
func TestConvertIntoSteadyStateAllocs(t *testing.T) {
	budgets := map[string]float64{
		// Plan header + YAML/format detection scratch: effectively the
		// floor for the text pipeline.
		"postgresql-text": 4,
		// JSON scanning keeps a few closure headers per conversion.
		"postgresql-json": 8,
		// Aligned-table parsing allocates the rows/cells scaffolding.
		"tidb-table": 40,
	}
	for key, raw := range arenaGuardSamples(t) {
		dialect := dialectOf(key)
		ar := core.NewPlanArena()
		if _, err := ConvertInto(dialect, raw, ar); err != nil {
			t.Fatalf("%s: warmup: %v", key, err)
		}
		ar.Reset()
		allocs := testing.AllocsPerRun(30, func() {
			if _, err := ConvertInto(dialect, raw, ar); err != nil {
				t.Fatal(err)
			}
			ar.Reset()
		})
		if max := budgets[key]; allocs > max {
			t.Errorf("%s: steady-state ConvertInto allocates %.1f times per plan, budget %.0f", key, allocs, max)
		}
	}
}

// TestLooksNumericNeverRejectsFloats pins the parseScalar fast path: the
// pre-filter may only skip ParseFloat when ParseFloat would fail, never
// the other way around.
func TestLooksNumericNeverRejectsFloats(t *testing.T) {
	accepts := []string{
		"0", "-1", "+1", "3.14", ".5", "1e9", "1E-9", "0x1p-2", "-0X2P4",
		"inf", "+Inf", "-INFINITY", "nan", "NaN", "1_0.0_1", "9007199254740993",
	}
	for _, s := range accepts {
		if !looksNumeric(s) {
			t.Errorf("looksNumeric(%q) = false, but ParseFloat may accept it", s)
		}
	}
	rejects := []string{"Seq Scan", "t0.c0 > 5", "root", "cop[tikv]", "", "hello"}
	for _, s := range rejects {
		if looksNumeric(s) {
			// Allowed (false positives only cost a ParseFloat call), but
			// these particular strings must stay filtered: they are the
			// hot-path property values the fix was measured on.
			t.Errorf("looksNumeric(%q) = true; hot-path filter regressed", s)
		}
	}
}