package convert

import (
	"sort"
	"sync"
	"testing"
)

func TestDialectsSorted(t *testing.T) {
	ds := Dialects()
	if len(ds) != len(converters) {
		t.Fatalf("Dialects() = %v, want %d entries", ds, len(converters))
	}
	if !sort.StringsAreSorted(ds) {
		t.Errorf("Dialects() not sorted: %v", ds)
	}
}

func TestCachedReturnsSharedConverter(t *testing.T) {
	a, err := Cached("postgresql")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached("PostgreSQL") // case-insensitive key
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Cached built a second converter for the same dialect")
	}
	if _, err := Cached("oracle"); err == nil {
		t.Error("unknown dialect must fail")
	}
}

// TestCachedConcurrent races many goroutines through cache population and
// conversion (meaningful under -race).
func TestCachedConcurrent(t *testing.T) {
	const input = `Seq Scan on t0  (cost=0.00..35.50 rows=2550 width=4)
  Filter: (c0 < 100)
`
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, d := range Dialects() {
					if _, err := Cached(d); err != nil {
						t.Error(err)
						return
					}
				}
				c, err := Cached("postgresql")
				if err != nil {
					t.Error(err)
					return
				}
				plan, err := c.Convert(input)
				if err != nil {
					t.Error(err)
					return
				}
				if plan.Root.Op.Name != "Full Table Scan" {
					t.Errorf("root = %v", plan.Root.Op)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSharedRegistryExtensionVisible pins the documented semantics: an
// extension of the shared registry is visible through cached converters.
func TestSharedRegistryExtensionVisible(t *testing.T) {
	reg := SharedRegistry()
	if reg != SharedRegistry() {
		t.Fatal("SharedRegistry must return one instance")
	}
	op := reg.ResolveOperation("postgresql", "Seq Scan")
	if op.Name != "Full Table Scan" {
		t.Fatalf("shared registry unpopulated: %v", op)
	}
}
