package sqlancer

import (
	"strings"
	"testing"

	"uplan/internal/sql"
)

func TestSchemaParses(t *testing.T) {
	g := New(1)
	for _, stmt := range g.SchemaSQL(3, 5) {
		if _, err := sql.Parse(stmt); err != nil {
			t.Errorf("unparseable schema stmt %q: %v", stmt, err)
		}
	}
	if len(g.Tables) != 3 {
		t.Fatalf("tables = %d", len(g.Tables))
	}
	// Alternating join-column types for cross-kind joins.
	if g.Tables[0].Columns[0].Type != "INT" || g.Tables[1].Columns[0].Type != "FLOAT" {
		t.Errorf("c0 types: %s, %s", g.Tables[0].Columns[0].Type, g.Tables[1].Columns[0].Type)
	}
}

func TestGeneratedStatementsParse(t *testing.T) {
	g := New(2)
	g.SchemaSQL(2, 5)
	for i := 0; i < 300; i++ {
		q := g.Query()
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("unparseable query %q: %v", q, err)
		}
		m := g.Mutation()
		if _, err := sql.Parse(m); err != nil {
			t.Fatalf("unparseable mutation %q: %v", m, err)
		}
	}
	for i := 0; i < 50; i++ {
		table, pred := g.PartitionableQuery()
		q := "SELECT * FROM " + table + " WHERE " + pred
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("unparseable TLP input %q: %v", q, err)
		}
		base, restricted := g.RestrictableQuery()
		if _, err := sql.Parse(base); err != nil {
			t.Fatalf("unparseable CERT base %q: %v", base, err)
		}
		if _, err := sql.Parse(restricted); err != nil {
			t.Fatalf("unparseable CERT restriction %q: %v", restricted, err)
		}
		if !strings.HasPrefix(restricted, base[:len(base)-0]) && !strings.Contains(restricted, " AND ") {
			t.Errorf("restriction should extend the base: %q vs %q", base, restricted)
		}
		u := g.UpdateWithSwap()
		if _, err := sql.Parse(u); err != nil {
			t.Fatalf("unparseable swap update %q: %v", u, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	a.SchemaSQL(2, 3)
	b.SchemaSQL(2, 3)
	for i := 0; i < 50; i++ {
		if a.Query() != b.Query() {
			t.Fatal("same seed must generate identical queries")
		}
	}
}

func TestQueryVariety(t *testing.T) {
	g := New(9)
	g.SchemaSQL(2, 3)
	seen := map[string]bool{}
	for i := 0; i < 400; i++ {
		q := g.Query()
		switch {
		case strings.Contains(q, "EXCEPT"), strings.Contains(q, "INTERSECT"),
			strings.Contains(q, "UNION"):
			seen["compound"] = true
		case strings.Contains(q, "LEFT JOIN"):
			seen["leftjoin"] = true
		case strings.Contains(q, "GROUP BY"):
			seen["groupby"] = true
		case strings.Contains(q, "LIMIT"):
			seen["limit"] = true
		}
		if strings.Contains(q, "GREATEST") {
			seen["float-in"] = true
		}
	}
	for _, k := range []string{"compound", "leftjoin", "groupby", "limit", "float-in"} {
		if !seen[k] {
			t.Errorf("query class %q never generated", k)
		}
	}
}
