// Package sqlancer generates random databases, queries, and database
// mutations in the style of the SQLancer testing tool the paper builds on:
// typed schemas, value generators covering SQL's edge cases (NULLs,
// negative numbers, float/int boundaries), and a predicate grammar rich
// enough to exercise index probes, three-valued logic, and joins.
package sqlancer

import (
	"fmt"
	"math/rand"
	"strings"
)

// Column is a generated column.
type Column struct {
	Name string
	Type string // INT, FLOAT, TEXT, BOOL
}

// Table is a generated table.
type Table struct {
	Name    string
	Columns []Column
	// nextIndex numbers the indexes created on this table.
	nextIndex int
}

// Generator produces random schemas, rows, queries, predicates, and
// mutations from a seeded source, so campaigns are reproducible.
type Generator struct {
	rng    *rand.Rand
	Tables []*Table
}

// New returns a generator with the given seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// SchemaSQL generates a fresh schema of n tables and returns the DDL plus
// initial INSERT statements. It resets any previous schema state.
func (g *Generator) SchemaSQL(tables, rowsPerTable int) []string {
	g.Tables = nil
	var stmts []string
	for i := 0; i < tables; i++ {
		t := &Table{Name: fmt.Sprintf("t%d", i)}
		// Alternate the join column's type so generated joins compare INT
		// against FLOAT keys (cross-kind equality edge cases).
		joinType := "INT"
		if i%2 == 1 {
			joinType = "FLOAT"
		}
		t.Columns = append(t.Columns, Column{Name: "c0", Type: joinType})
		nCols := 2 + g.rng.Intn(3)
		types := []string{"INT", "FLOAT", "TEXT", "BOOL"}
		for c := 1; c <= nCols; c++ {
			t.Columns = append(t.Columns, Column{
				Name: fmt.Sprintf("c%d", c),
				Type: types[g.rng.Intn(len(types))],
			})
		}
		g.Tables = append(g.Tables, t)
		var cols []string
		for _, c := range t.Columns {
			cols = append(cols, c.Name+" "+c.Type)
		}
		stmts = append(stmts, "CREATE TABLE "+t.Name+" ("+strings.Join(cols, ", ")+")")
		if rowsPerTable > 0 {
			stmts = append(stmts, g.insertSQL(t, rowsPerTable))
		}
	}
	return stmts
}

func (g *Generator) insertSQL(t *Table, n int) string {
	var rows []string
	for r := 0; r < n; r++ {
		var vals []string
		for _, c := range t.Columns {
			vals = append(vals, g.value(c.Type))
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return "INSERT INTO " + t.Name + " VALUES " + strings.Join(rows, ", ")
}

// value renders a random literal of the given type, covering NULLs and
// boundary values.
func (g *Generator) value(typ string) string {
	if g.rng.Intn(8) == 0 {
		return "NULL"
	}
	switch typ {
	case "INT":
		switch g.rng.Intn(6) {
		case 0:
			return "0"
		case 1:
			return fmt.Sprint(-1 - g.rng.Intn(100))
		default:
			return fmt.Sprint(g.rng.Intn(100))
		}
	case "FLOAT":
		switch g.rng.Intn(5) {
		case 0:
			return "0.0"
		case 1:
			return fmt.Sprintf("%d.0", g.rng.Intn(50))
		default:
			return fmt.Sprintf("%.2f", g.rng.Float64()*100-50)
		}
	case "TEXT":
		words := []string{"'a'", "'b'", "'abc'", "''", "'xyz'", "'a%b'", "'_'"}
		return words[g.rng.Intn(len(words))]
	case "BOOL":
		if g.rng.Intn(2) == 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "NULL"
}

// randTable picks a random generated table.
func (g *Generator) randTable() *Table {
	return g.Tables[g.rng.Intn(len(g.Tables))]
}

func (g *Generator) randColumn(t *Table) Column {
	return t.Columns[g.rng.Intn(len(t.Columns))]
}

// Predicate generates a random predicate over the table's columns, with
// qualified column names when qualify is set.
func (g *Generator) Predicate(t *Table, qualify bool, depth int) string {
	col := func() string {
		c := g.randColumn(t)
		if qualify {
			return t.Name + "." + c.Name
		}
		return c.Name
	}
	typedCol := func(typ string) (string, bool) {
		var matches []Column
		for _, c := range t.Columns {
			if c.Type == typ {
				matches = append(matches, c)
			}
		}
		if len(matches) == 0 {
			return "", false
		}
		c := matches[g.rng.Intn(len(matches))]
		if qualify {
			return t.Name + "." + c.Name, true
		}
		return c.Name, true
	}
	if depth > 0 && g.rng.Intn(3) == 0 {
		conn := " AND "
		if g.rng.Intn(2) == 0 {
			conn = " OR "
		}
		return "(" + g.Predicate(t, qualify, depth-1) + conn + g.Predicate(t, qualify, depth-1) + ")"
	}
	switch g.rng.Intn(10) {
	case 0:
		return col() + " IS NULL"
	case 1:
		return col() + " IS NOT NULL"
	case 2:
		ops := []string{"=", "<", ">", "<=", ">=", "<>"}
		return col() + " " + ops[g.rng.Intn(len(ops))] + " " + g.value("INT")
	case 3:
		if c, ok := typedCol("INT"); ok {
			// The Listing 3 shape: integer column probed with a float list.
			return c + " IN (GREATEST(0.1, 0.2))"
		}
		return col() + " IS NULL"
	case 4:
		if c, ok := typedCol("INT"); ok {
			// Integer column compared against a fractional constant.
			return c + fmt.Sprintf(" = %d.5", g.rng.Intn(20))
		}
		return col() + " IN (" + g.value("INT") + ", " + g.value("INT") + ")"
	case 5:
		return col() + " IN (" + g.value("INT") + ", " + g.value("INT") + ")"
	case 6:
		lo := g.rng.Intn(40)
		return col() + fmt.Sprintf(" BETWEEN %d AND %d", lo, lo+g.rng.Intn(30))
	case 7:
		ops := []string{">=", "<="}
		return col() + " " + ops[g.rng.Intn(len(ops))] + fmt.Sprintf(" %d", g.rng.Intn(50))
	case 8:
		return "NOT (" + g.Predicate(t, qualify, 0) + ")"
	default:
		if c, ok := typedCol("TEXT"); ok {
			pats := []string{"'a%'", "'%b%'", "'_'", "'abc'"}
			return c + " LIKE " + pats[g.rng.Intn(len(pats))]
		}
		return col() + " = " + g.value("INT")
	}
}

// Query generates a random SELECT over the generated schema.
func (g *Generator) Query() string {
	t := g.randTable()
	// Occasionally generate a compound (set-operation) query over two
	// distinct tables.
	if len(g.Tables) > 1 && g.rng.Intn(6) == 0 {
		var t2 *Table
		for {
			t2 = g.randTable()
			if t2 != t {
				break
			}
		}
		op := []string{"UNION", "UNION ALL", "EXCEPT", "INTERSECT"}[g.rng.Intn(4)]
		return fmt.Sprintf("SELECT c0 FROM %s %s SELECT c0 FROM %s", t.Name, op, t2.Name)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	distinct := g.rng.Intn(5) == 0
	if distinct {
		b.WriteString("DISTINCT ")
	}
	join := len(g.Tables) > 1 && g.rng.Intn(3) == 0
	var t2 *Table
	if join {
		for {
			t2 = g.randTable()
			if t2 != t {
				break
			}
		}
	}
	groupBy := !distinct && g.rng.Intn(4) == 0
	gcol := g.randColumn(t)
	switch {
	case groupBy:
		fmt.Fprintf(&b, "%s.%s, COUNT(*)", t.Name, gcol.Name)
	case g.rng.Intn(4) == 0:
		fmt.Fprintf(&b, "%s.%s", t.Name, g.randColumn(t).Name)
	default:
		b.WriteString("*")
	}
	b.WriteString(" FROM " + t.Name)
	if join {
		jt := "INNER JOIN"
		if g.rng.Intn(3) == 0 {
			jt = "LEFT JOIN"
		}
		fmt.Fprintf(&b, " %s %s ON %s.c0 = %s.c0", jt, t2.Name, t.Name, t2.Name)
	}
	if g.rng.Intn(4) != 0 {
		b.WriteString(" WHERE " + g.Predicate(t, true, 1))
	}
	if groupBy {
		fmt.Fprintf(&b, " GROUP BY %s.%s", t.Name, gcol.Name)
		if g.rng.Intn(3) == 0 {
			b.WriteString(" HAVING COUNT(*) >= 1")
		}
	}
	if g.rng.Intn(3) == 0 {
		fmt.Fprintf(&b, " ORDER BY %s.%s", t.Name, gcol.Name)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+g.rng.Intn(10))
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(&b, " OFFSET %d", g.rng.Intn(4))
			}
		}
	}
	return b.String()
}

// PartitionableQuery returns a table plus a random predicate, the inputs
// TLP needs (SELECT * FROM t WHERE φ partitions).
func (g *Generator) PartitionableQuery() (table, predicate string) {
	t := g.randTable()
	return t.Name, g.Predicate(t, false, 1)
}

// RestrictableQuery returns a base query plus a more restrictive variant
// (one extra conjunct), the inputs CERT needs.
func (g *Generator) RestrictableQuery() (base, restricted string) {
	t := g.randTable()
	p1 := g.Predicate(t, false, 0)
	p2 := g.Predicate(t, false, 0)
	base = fmt.Sprintf("SELECT * FROM %s WHERE %s", t.Name, p1)
	restricted = fmt.Sprintf("SELECT * FROM %s WHERE %s AND %s", t.Name, p1, p2)
	return base, restricted
}

// Mutation generates a QPG database mutation: an index creation, extra
// rows, an update, or a delete. QPG applies these when plan coverage
// stalls, steering future queries toward new plans.
func (g *Generator) Mutation() string {
	t := g.randTable()
	switch g.rng.Intn(6) {
	case 0, 1, 2:
		c := g.randColumn(t)
		t.nextIndex++
		return fmt.Sprintf("CREATE INDEX i_%s_%s_%d ON %s (%s)",
			t.Name, c.Name, t.nextIndex, t.Name, c.Name)
	case 3:
		return g.insertSQL(t, 1+g.rng.Intn(5))
	case 4:
		c := g.randColumn(t)
		return fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s",
			t.Name, c.Name, g.value(c.Type), g.Predicate(t, false, 0))
	default:
		return fmt.Sprintf("DELETE FROM %s WHERE %s", t.Name, g.Predicate(t, false, 0))
	}
}

// UpdateWithSwap generates an UPDATE whose SET clauses read columns that
// other SET clauses write (triggers Halloween-style executor bugs).
func (g *Generator) UpdateWithSwap() string {
	t := g.randTable()
	var ints []Column
	for _, c := range t.Columns {
		if c.Type == "INT" || c.Type == "FLOAT" {
			ints = append(ints, c)
		}
	}
	if len(ints) < 2 {
		return g.Mutation()
	}
	a, b := ints[0], ints[1]
	return fmt.Sprintf("UPDATE %s SET %s = %s + 1, %s = %s * 2",
		t.Name, a.Name, b.Name, b.Name, a.Name)
}
