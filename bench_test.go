// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its artifact once and then times the underlying
// pipeline.
package uplan

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"uplan/internal/bench"
	"uplan/internal/bugs"
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/explain"
	"uplan/internal/viz"
)

var printOnce sync.Map

func printHeader(b *testing.B, name, artifact string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
}

// BenchmarkTableI_StudiedDBMSs regenerates Table I: the nine studied DBMSs.
func BenchmarkTableI_StudiedDBMSs(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		out += fmt.Sprintf("%-12s %-14s %-12s %-8s %-5s\n", "DBMS", "Version", "Data Model", "Release", "Rank")
		for _, info := range dbms.Infos {
			out += fmt.Sprintf("%-12s %-14s %-12s %-8d %-5d\n",
				info.Display, info.Version, info.DataModel, info.Release, info.Rank)
		}
	}
	printHeader(b, "Table I — studied DBMSs", out)
}

// BenchmarkTableII_Vocabulary regenerates Table II: operations and
// properties per category for each DBMS's plan representation.
func BenchmarkTableII_Vocabulary(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = fmt.Sprintf("%-12s %5s %5s %5s %6s %5s %5s %5s %5s | %5s %5s %7s %7s %5s\n",
			"DBMS", "Prod", "Comb", "Join", "Folder", "Proj", "Exec", "Cons", "Sum",
			"Card", "Cost", "Config", "Status", "Sum")
		for _, info := range dbms.Infos {
			v, _ := dbms.VocabularyFor(info.Name)
			oc := v.OperationCount()
			pc := v.PropertyCount()
			out += fmt.Sprintf("%-12s %5d %5d %5d %6d %5d %5d %5d %5d | %5d %5d %7d %7d %5d\n",
				info.Display,
				oc[core.Producer], oc[core.Combinator], oc[core.Join], oc[core.Folder],
				oc[core.Projector], oc[core.Executor], oc[core.Consumer], v.OperationTotal(),
				pc[core.Cardinality], pc[core.Cost], pc[core.Configuration], pc[core.Status],
				v.PropertyTotal())
		}
	}
	printHeader(b, "Table II — operations and properties per representation", out)
}

// BenchmarkTableIII_Formats regenerates Table III: officially supported
// serialization formats per DBMS.
func BenchmarkTableIII_Formats(b *testing.B) {
	all := []explain.Format{explain.FormatGraph, explain.FormatText,
		explain.FormatTable, explain.FormatJSON, explain.FormatXML, explain.FormatYAML}
	var out string
	for i := 0; i < b.N; i++ {
		out = fmt.Sprintf("%-12s %-6s %-5s %-6s %-5s %-4s %-5s\n",
			"DBMS", "Graph", "Text", "Table", "JSON", "XML", "YAML")
		for _, info := range dbms.Infos {
			row := fmt.Sprintf("%-12s", info.Display)
			supported := map[explain.Format]bool{}
			for _, f := range dbms.Formats[info.Name] {
				supported[f] = true
			}
			for _, f := range all {
				mark := ""
				if supported[f] {
					mark = "Y"
				}
				row += fmt.Sprintf(" %-5s", mark)
			}
			out += row + "\n"
		}
	}
	printHeader(b, "Table III — supported formats", out)
}

// BenchmarkTableIV_VizTools regenerates Table IV: the third-party
// visualization tools of the study, alongside what this repository's
// unified renderer replaces them with.
func BenchmarkTableIV_VizTools(b *testing.B) {
	tools := []struct{ tool, dbs, license string }{
		{"Postgres Explain Visualizer 2", "PostgreSQL", "Open-source"},
		{"pgmustard", "PostgreSQL", "Commercial"},
		{"pganalyze", "PostgreSQL", "Commercial"},
		{"ApexSQL", "SQL Server", "Commercial"},
		{"Plan Explorer", "SQL Server", "Commercial"},
		{"Azure Data Studio", "SQL Server", "Commercial"},
		{"Dbvisualizer", "MySQL, PostgreSQL, SQL Server", "Commercial"},
		{"internal/viz (this repo)", "all nine via UPlan", "Open-source"},
	}
	var out string
	for i := 0; i < b.N; i++ {
		out = fmt.Sprintf("%-32s %-32s %s\n", "Tool", "DBMSs", "License")
		for _, t := range tools {
			out += fmt.Sprintf("%-32s %-32s %s\n", t.tool, t.dbs, t.license)
		}
	}
	printHeader(b, "Table IV — visualization tools", out)
}

// BenchmarkTableV_BugCampaign regenerates Table V: the QPG/CERT campaign
// over the 17 injected defects.
func BenchmarkTableV_BugCampaign(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		results, err := bugs.RunTableV(11, 350)
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		out = fmt.Sprintf("%-12s %-8s %-8s %-10s %-12s %s\n",
			"DBMS", "Found by", "Bug ID", "Status", "Severity", "Rediscovered")
		for _, r := range results {
			mark := "no"
			if r.Found {
				mark = "yes"
				found++
			}
			info, _ := dbms.InfoFor(r.Bug.DBMS)
			out += fmt.Sprintf("%-12s %-8s %-8s %-10s %-12s %s\n",
				info.Display, r.Bug.FoundBy, r.Bug.ID, r.Bug.Status, r.Bug.Severity, mark)
		}
		out += fmt.Sprintf("rediscovered %d/17 injected bugs (paper: 17 found in 24h)\n", found)
	}
	printHeader(b, "Table V — bugs found by QPG/CERT over UPlan", out)
}

// BenchmarkTableVI_TPCH regenerates Table VI: average operations per
// category for TPC-H plans across five DBMSs.
func BenchmarkTableVI_TPCH(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		reports, err := bench.RunTableVI(42)
		if err != nil {
			b.Fatal(err)
		}
		out = bench.FormatCategoryTable(reports)
	}
	printHeader(b, "Table VI — avg operations per category (TPC-H)", out)
}

// BenchmarkTableVII_YCSB_WDBench regenerates Table VII: YCSB plans on
// MongoDB and WDBench plans on Neo4j.
func BenchmarkTableVII_YCSB_WDBench(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		reports, err := bench.RunTableVII(42)
		if err != nil {
			b.Fatal(err)
		}
		out = bench.FormatCategoryTable(reports)
	}
	printHeader(b, "Table VII — avg operations (YCSB on MongoDB, WDBench on Neo4j)", out)
}

// BenchmarkFigure1_Neo4jPlan regenerates Figure 1: a Neo4j relationship
// scan plan in the native table format.
func BenchmarkFigure1_Neo4jPlan(b *testing.B) {
	e := dbms.MustNew("neo4j")
	for _, s := range []string{
		"CREATE TABLE rel (src INT, dst INT, title TEXT)",
		"INSERT INTO rel VALUES (1, 2, 'developer'), (2, 3, 'designer'), (3, 4, 'web developer')",
	} {
		if _, err := e.Execute(s); err != nil {
			b.Fatal(err)
		}
	}
	q := "SELECT r.src FROM rel r INNER JOIN rel r2 ON r.dst = r2.src WHERE r.title LIKE '%developer'"
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = e.Explain(q, explain.FormatText)
		if err != nil {
			b.Fatal(err)
		}
	}
	printHeader(b, "Figure 1 — Neo4j plan (relationship operations are Join category)", out)
}

// BenchmarkFigure2_Architecture regenerates Figure 2: one query, three
// engines, three native plans, one unified shape.
func BenchmarkFigure2_Architecture(b *testing.B) {
	engines := []string{"mysql", "postgresql", "tidb"}
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, name := range engines {
			e := dbms.MustNew(name)
			if _, err := e.Execute("CREATE TABLE t0 (c0 INT)"); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Execute("INSERT INTO t0 VALUES (1), (2), (7)"); err != nil {
				b.Fatal(err)
			}
			format := explain.FormatText
			if name == "tidb" {
				format = explain.FormatTable
			}
			raw, err := e.Explain("SELECT * FROM t0 WHERE c0 < 5", format)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := convert.Convert(name, raw)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("--- %s raw ---\n%s--- %s unified ---\n%s\n",
				name, raw, name, plan.MarshalIndentedText())
		}
	}
	printHeader(b, "Figure 2 — raw plans vs unified plans", out)
}

// BenchmarkFigure3_Visualization regenerates Figure 3: TPC-H q1 plans of
// PostgreSQL, MongoDB, and MySQL rendered by the single unified renderer.
func BenchmarkFigure3_Visualization(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		q1 := bench.TPCHQueries()[0]
		var plans []*core.Plan
		var ascii string
		for _, name := range []string{"postgresql", "mongodb", "mysql"} {
			e := dbms.MustNew(name)
			if err := bench.LoadTPCH(e, 42, bench.DefaultSizes()); err != nil {
				b.Fatal(err)
			}
			raw, err := e.Explain(q1, e.DefaultFormat())
			if err != nil {
				b.Fatal(err)
			}
			plan, err := convert.Convert(name, raw)
			if err != nil {
				b.Fatal(err)
			}
			plans = append(plans, plan)
			ascii += viz.ASCII(plan) + "\n"
		}
		htmlOut := viz.HTML("TPC-H q1 unified plans", plans...)
		out = ascii + fmt.Sprintf("(HTML rendering: %d bytes; DOT available via viz.DOT)\n", len(htmlOut))
	}
	printHeader(b, "Figure 3 — visualized unified plans of TPC-H q1", out)
}

// BenchmarkFigure4_ProducerVariance regenerates Figure 4: the variance of
// Producer-operation counts per TPC-H query across five DBMSs.
func BenchmarkFigure4_ProducerVariance(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		reports, err := bench.RunTableVI(42)
		if err != nil {
			b.Fatal(err)
		}
		vs := bench.ProducerVariance(reports)
		out = bench.FormatVarianceSeries(vs)
		out += fmt.Sprintf("high-variance queries (>5): %v (paper: six queries incl. q2,q5,q7,q8,q9,q11)\n",
			bench.HighVarianceQueries(vs, 5))
	}
	printHeader(b, "Figure 4 — Producer-count variance per TPC-H query", out)
}

// BenchmarkListing1_NativePlans regenerates Listing 1: PostgreSQL and
// SQLite native plans for the same compound query.
func BenchmarkListing1_NativePlans(b *testing.B) {
	setup := []string{
		"CREATE TABLE t0 (c0 INT)",
		"CREATE TABLE t1 (c0 INT)",
		"CREATE TABLE t2 (c0 INT PRIMARY KEY)",
		"INSERT INTO t0 VALUES (1), (2), (3), (150)",
		"INSERT INTO t1 VALUES (1), (3)",
		"INSERT INTO t2 VALUES (1), (5), (9)",
	}
	q := `SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100
	 GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10`
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, name := range []string{"postgresql", "sqlite"} {
			e := dbms.MustNew(name)
			for _, s := range setup {
				if _, err := e.Execute(s); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Analyze(); err != nil {
				b.Fatal(err)
			}
			raw, err := e.Explain(q, explain.FormatText)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("--- %s ---\n%s\n", name, raw)
		}
	}
	printHeader(b, "Listing 1 — native PostgreSQL and SQLite plans", out)
}

// BenchmarkListing4_Q11 regenerates Listing 4 and the Section V-A.3
// analysis: unified q11 plans of PostgreSQL vs TiDB and the runtime share
// of the redundant table scans.
func BenchmarkListing4_Q11(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		a, err := bench.RunQ11(42)
		if err != nil {
			b.Fatal(err)
		}
		out = "--- PostgreSQL (unified) ---\n" + a.PostgresPlan.MarshalIndentedText()
		out += "--- TiDB (unified) ---\n" + a.TiDBPlan.MarshalIndentedText()
		out += fmt.Sprintf(
			"\nfull table scans: postgresql=%d tidb=%d (paper: 6 vs 3)\n"+
				"redundant-scan time: %.3f ms of %.3f ms total = %.0f%% (paper: 27%% at 10 GB)\n",
			a.PGScans, a.TiDBScans, a.RedundantMS, a.TotalMS, a.SavingsFraction()*100)
	}
	printHeader(b, "Listing 4 — q11 cross-DBMS comparison", out)
}

// BenchmarkConvertPostgresText measures raw converter throughput (the
// library's hot path when integrated into a tester like SQLancer).
func BenchmarkConvertPostgresText(b *testing.B) {
	e := dbms.MustNew("postgresql")
	if err := bench.LoadTPCH(e, 42, bench.DefaultSizes()); err != nil {
		b.Fatal(err)
	}
	raw, err := e.Explain(bench.TPCHQueries()[4], explain.FormatText)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convert.Convert("postgresql", raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertText measures every dialect's text/table converter — the
// formats the arena + zero-copy line-slicing rewrite targets — through the
// cached one-shot path (pooled arena + detach, what uplan.Convert does)
// and through a reused arena (the pipeline's owned-batch mode: ConvertInto
// + Reset, plans not retained). Inputs come from bench.TextSamples, shared
// with uplan-bench's -experiment text so both trajectories measure the
// same plans.
func BenchmarkConvertText(b *testing.B) {
	samples, err := bench.TextSamples(42)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range samples {
		c, err := convert.Cached(s.Dialect)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Convert(s.Raw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.Name+"/reuse", func(b *testing.B) {
			ar := core.NewPlanArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := convert.ConvertInto(s.Dialect, s.Raw, ar); err != nil {
					b.Fatal(err)
				}
				ar.Reset()
			}
		})
	}
}

// BenchmarkBatchConvert compares sequential conversion of the mixed
// nine-dialect corpus (TPC-H plus the bug-campaign stream) against the
// concurrent batch pipeline at increasing worker counts.
//
// "sequential" is the seed's one-at-a-time path: convert.Convert builds
// the registry-backed converter anew for every record, which is what
// callers did before ConvertBatch existed. "sequential-cached" converts
// one record at a time through the cached converters the facade now uses.
// The parallel cases run the pipeline, which additionally reuses one
// converter per dialect per worker and overlaps parsing across workers.
// Every strategy retains the converted plans of the whole corpus — the
// pipeline returns all results by contract, so the sequential paths
// keep theirs too, and the strategies do the same job.
func BenchmarkBatchConvert(b *testing.B) {
	corpus, err := bench.Corpus(42)
	if err != nil {
		b.Fatal(err)
	}
	reportRate := func(b *testing.B, n int, elapsed time.Duration) {
		b.ReportMetric(float64(n*b.N)/elapsed.Seconds(), "plans/s")
	}
	plans := make([]*core.Plan, len(corpus))

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j, r := range corpus {
				p, err := convert.Convert(r.Dialect, r.Serialized)
				if err != nil {
					b.Fatal(err)
				}
				plans[j] = p
			}
		}
		reportRate(b, len(corpus), time.Since(start))
	})
	b.Run("sequential-cached", func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j, r := range corpus {
				c, err := convert.Cached(r.Dialect)
				if err != nil {
					b.Fatal(err)
				}
				p, err := c.Convert(r.Serialized)
				if err != nil {
					b.Fatal(err)
				}
				plans[j] = p
			}
		}
		reportRate(b, len(corpus), time.Since(start))
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				results, stats := ConvertBatch(corpus, PipelineOptions{Workers: workers})
				if stats.Errors != 0 {
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			}
			reportRate(b, len(corpus), time.Since(start))
		})
	}
	// Owned-batch arena mode: one arena per worker, reset between records,
	// results detached via the compact Plan.Clone.
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel-%d-reuse", workers), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				results, stats := ConvertBatch(corpus, PipelineOptions{Workers: workers, ReuseArenas: true})
				if stats.Errors != 0 {
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			}
			reportRate(b, len(corpus), time.Since(start))
		})
	}
}

// BenchmarkFingerprint measures plan fingerprinting (QPG's inner loop)
// on a cached plan: the hex formatting helper, the binary SHA-256 digest,
// the allocation-free 64-bit fast path, and the FingerprintSet hit path.
func BenchmarkFingerprint(b *testing.B) {
	e := dbms.MustNew("tidb")
	if err := bench.LoadTPCH(e, 42, bench.DefaultSizes()); err != nil {
		b.Fatal(err)
	}
	raw, err := e.Explain(bench.TPCHQueries()[10], explain.FormatTable)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := convert.Convert("tidb", raw)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.FingerprintOptions{IncludeConfiguration: true}
	b.Run("hex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Fingerprint(opts)
		}
	})
	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.FingerprintBytes(opts)
		}
	})
	b.Run("fast64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Fingerprint64(opts)
		}
	})
	b.Run("observe-hit", func(b *testing.B) {
		set := core.NewFingerprintSet(opts)
		set.Observe(plan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set.Observe(plan)
		}
	})
}
