// Compare: the paper's application A.3 — cross-DBMS plan comparison on
// TPC-H. Prints the Table VI operation histogram, the Figure 4 variance
// series, similarity scores between engines' plans, and the q11 insight.
package main

import (
	"fmt"
	"log"

	"uplan/internal/bench"
	"uplan/internal/core"
)

func main() {
	reports, err := bench.RunTableVI(42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table VI: average operations per category (TPC-H, 22 queries) ==")
	fmt.Print(bench.FormatCategoryTable(reports))

	fmt.Println("\n== Figure 4: Producer-count variance per query ==")
	vs := bench.ProducerVariance(reports)
	fmt.Print(bench.FormatVarianceSeries(vs))
	fmt.Printf("queries with variance > 5: %v\n", bench.HighVarianceQueries(vs, 5))

	// Tree-similarity between PostgreSQL and TiDB plans per query
	// (Section VI's suggested metric).
	var pg, ti []*core.Plan
	for _, r := range reports {
		switch r.Engine {
		case "postgresql":
			pg = r.Plans
		case "tidb":
			ti = r.Plans
		}
	}
	fmt.Println("\n== PostgreSQL vs TiDB plan similarity (tree edit distance) ==")
	for i := range pg {
		fmt.Printf("q%-2d similarity %.2f\n", i+1, core.Similarity(pg[i], ti[i]))
	}

	a, err := bench.RunQ11(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== q11 insight (Listing 4) ==\n")
	fmt.Printf("PostgreSQL full table scans: %d, TiDB: %d\n", a.PGScans, a.TiDBScans)
	fmt.Printf("time in redundant scans: %.3f ms of %.3f ms (%.0f%%)\n",
		a.RedundantMS, a.TotalMS, a.SavingsFraction()*100)
	fmt.Println("→ actionable: PostgreSQL could reuse the FROM-clause scan results for the HAVING subquery.")
}
