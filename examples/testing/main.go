// Testing: the paper's Figure 2 architecture — QPG and CERT implemented
// once, DBMS-agnostically over the unified plan representation, applied to
// three engines. This example injects one known defect per engine and
// shows the testers rediscovering them.
package main

import (
	"fmt"
	"log"

	"uplan/internal/bugs"
	"uplan/internal/cert"
	"uplan/internal/dbms"
	"uplan/internal/qpg"
	"uplan/internal/sqlancer"
)

func main() {
	// Part 1: QPG hunts the paper's Listing 3 bug (MySQL #113302): an
	// index lookup that truncates decimal probe values.
	fmt.Println("== QPG over UPlan: hunting MySQL #113302 (Listing 3) ==")
	var listing3 bugs.Bug
	for _, b := range bugs.TableV {
		if b.ID == "113302" {
			listing3 = b
		}
	}
	res, err := bugs.RunOne(listing3, 3, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rediscovered: %v\n", res.Found)
	if res.Found {
		fmt.Printf("evidence: %s\n", res.Evidence)
	}

	// Part 2: the same QPG code drives a coverage campaign on a pristine
	// TiDB engine — no findings, but plan-guided exploration.
	fmt.Println("\n== QPG coverage on a pristine TiDB engine ==")
	e := dbms.MustNew("tidb")
	opts := qpg.DefaultOptions()
	opts.Queries = 150
	c, err := qpg.New(e, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Setup(2, 12); err != nil {
		log.Fatal(err)
	}
	findings := c.Run(opts)
	fmt.Printf("queries: %d, distinct unified plans: %d, mutations: %d, findings: %d\n",
		opts.Queries, c.Plans.Size(), c.Mutations, len(findings))

	// Part 3: CERT reads cardinality estimates through the unified plan
	// and flags a restriction that increased the estimate.
	fmt.Println("\n== CERT over UPlan: estimate monotonicity on PostgreSQL ==")
	pg := dbms.MustNew("postgresql")
	pg.Opts.Quirks.PredicateInflatesEstimate = 800 // injected defect
	gen := sqlancer.New(5)
	for _, stmt := range gen.SchemaSQL(2, 30) {
		if _, err := pg.Execute(stmt); err != nil {
			log.Fatal(err)
		}
	}
	if err := pg.Analyze(); err != nil {
		log.Fatal(err)
	}
	checker, err := cert.New(pg)
	if err != nil {
		log.Fatal(err)
	}
	violations, err := checker.Run(gen, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked %d pairs, %d violations\n", checker.Checked, len(violations))
	if len(violations) > 0 {
		fmt.Println("first violation:", violations[0])
	}
}
