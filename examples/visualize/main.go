// Visualize: the paper's Figure 3 — TPC-H q1 plans from PostgreSQL,
// MongoDB, and MySQL rendered by one renderer through the unified
// representation. Writes plan.html next to the ASCII output.
package main

import (
	"fmt"
	"log"
	"os"

	"uplan/internal/bench"
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/viz"
)

func main() {
	q1 := bench.TPCHQueries()[0]
	var plans []*core.Plan
	for _, name := range []string{"postgresql", "mongodb", "mysql"} {
		e := dbms.MustNew(name)
		if err := bench.LoadTPCH(e, 42, bench.DefaultSizes()); err != nil {
			log.Fatal(err)
		}
		raw, err := e.Explain(q1, e.DefaultFormat())
		if err != nil {
			log.Fatal(err)
		}
		plan, err := convert.Convert(name, raw)
		if err != nil {
			log.Fatal(err)
		}
		plans = append(plans, plan)

		fmt.Printf("== %s ==\n", name)
		fmt.Print(viz.ASCII(plan))
		fmt.Println()
	}

	html := viz.HTML("Visualized unified plans of TPC-H query 1", plans...)
	if err := os.WriteFile("plan.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote plan.html (PEV2-style side-by-side rendering)")

	fmt.Println("\n== Graphviz DOT of the PostgreSQL plan ==")
	fmt.Print(viz.DOT(plans[0]))
}
