// Quickstart: convert a PostgreSQL EXPLAIN text plan into the unified
// representation, inspect it, and serialize it back out in the unified
// text and JSON formats.
package main

import (
	"fmt"
	"log"

	"uplan"
)

// explainOutput is a PostgreSQL EXPLAIN text plan as a real server prints
// it (the shape of the paper's Listing 1).
const explainOutput = `HashAggregate  (cost=62998.82..63009.32 rows=1050 width=4)
  Group Key: t1.c0
  ->  Hash Join  (cost=26150.38..56906.48 rows=400 width=4)
        Hash Cond: (t0.c0 = t1.c0)
        ->  Seq Scan on t0  (cost=0.00..14425.00 rows=99 width=4)
              Filter: (c0 < 100)
        ->  Hash  (cost=35.50..35.50 rows=2550 width=4)
              ->  Seq Scan on t1  (cost=0.00..35.50 rows=2550 width=4)
Planning Time: 0.124 ms
`

func main() {
	plan, err := uplan.Convert("postgresql", explainOutput)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== unified plan (indented text) ==")
	fmt.Print(plan.MarshalIndentedText())

	fmt.Println("\n== operations per category ==")
	for cat, n := range plan.Histogram() {
		if n > 0 {
			fmt.Printf("  %-12s %g\n", cat, n)
		}
	}

	est, _ := plan.RootCardinality()
	fmt.Printf("\nroot cardinality estimate: %g rows\n", est)

	fmt.Println("\n== strict EBNF form (paper Listing 2 grammar) ==")
	fmt.Println(plan.MarshalText())

	data, err := plan.MarshalJSONIndent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== JSON form ==")
	fmt.Println(string(data))

	// Round trip: the serializations parse back to the same plan.
	back, err := uplan.ParseJSON(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON round trip equal: %v\n", plan.Equal(back))
}
