// Serve: boot the hardened plan service in-process, walk its HTTP API
// with the retrying client, and drain it gracefully.
//
// The same walkthrough against a standalone server, with curl:
//
//	go run ./cmd/uplan-serve -addr 127.0.0.1:8091 &
//
//	# Liveness and readiness (readiness flips 503 once a drain starts):
//	curl http://127.0.0.1:8091/healthz
//	curl http://127.0.0.1:8091/readyz
//
//	# Convert one native plan. Repeat it and watch X-Uplan-Cache flip
//	# from "miss" to "hit":
//	curl -i -X POST http://127.0.0.1:8091/v1/convert -d '{
//	  "dialect": "postgresql",
//	  "serialized": "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"
//	}'
//
//	# A batch through the pipeline worker pool:
//	curl -X POST http://127.0.0.1:8091/v1/batch-convert -d '{
//	  "records": [
//	    {"dialect": "postgresql", "serialized": "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"},
//	    {"dialect": "postgresql", "serialized": "Index Scan using i0 on t2  (cost=0.29..8.31 rows=1 width=8)"}
//	  ]
//	}'
//
//	# Fingerprints only, and a structural comparison:
//	curl -X POST http://127.0.0.1:8091/v1/fingerprint -d '{
//	  "dialect": "postgresql",
//	  "serialized": "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"
//	}'
//	curl -X POST http://127.0.0.1:8091/v1/compare -d '{
//	  "a": {"dialect": "postgresql", "serialized": "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"},
//	  "b": {"dialect": "postgresql", "serialized": "Seq Scan on t1  (cost=0.00..431.00 rows=100 width=4)"}
//	}'
//
//	# Counters: requests, sheds (429s carry Retry-After), panics
//	# contained, cache hits/misses, per-dialect conversion totals:
//	curl http://127.0.0.1:8091/metrics
//
//	# Graceful drain: finish in-flight work, sync the store, exit 0.
//	# A second signal would force exit 3 instead of waiting.
//	kill -TERM %1 && wait %1; echo "exit $?"
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"uplan/internal/serve"
	"uplan/internal/serve/serveclient"
)

const pgPlan = `Hash Join  (cost=26150.38..56906.48 rows=400 width=4)
  Hash Cond: (t0.c0 = t1.c0)
  ->  Seq Scan on t0  (cost=0.00..14425.00 rows=99 width=4)
  ->  Hash  (cost=35.50..35.50 rows=2550 width=4)
        ->  Seq Scan on t1  (cost=0.00..35.50 rows=2550 width=4)
`

func main() {
	// Boot on a kernel-assigned port; cmd/uplan-serve is this plus flags,
	// a campaign store, and the two-stage SIGINT/SIGTERM protocol.
	srv := serve.New(serve.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	base := "http://" + l.Addr().String()
	c := serveclient.New(base, serveclient.Options{RequestTimeout: 5 * time.Second})
	ctx := context.Background()

	fmt.Println("== probes ==")
	health, err := c.Healthy(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ready, err := c.Ready(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthz=%s readyz=%s\n", health.Status, ready.Status)

	fmt.Println("\n== convert (twice: the repeat is a cache hit) ==")
	for i := 0; i < 2; i++ {
		resp, err := c.Convert(ctx, "postgresql", pgPlan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fingerprint64=%s fingerprint=%s\n", resp.Fingerprint64, resp.Fingerprint)
	}

	fmt.Println("\n== batch-convert ==")
	batch, err := c.BatchConvert(ctx, []serve.ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "postgresql", Serialized: "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"},
		{Dialect: "postgresql", Serialized: "not a plan at all"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted=%d errors=%d of %d\n", batch.Converted, batch.Errors, len(batch.Results))

	fmt.Println("\n== binary wire (negotiated via Content-Type/Accept) ==")
	// The same convert on the compact binary wire: the plan comes back as
	// an internal/codec blob, decoded client-side — same fingerprints,
	// a fraction of the bytes. The JSON cache entry is not reused: the
	// response cache keys on (input, negotiated format).
	bin, err := c.ConvertBinary(ctx, "postgresql", pgPlan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fingerprint64=%d nodes=%d (decoded from the binary blob)\n",
		bin.Fingerprint64, bin.Plan.NodeCount())
	binBatch, err := c.BatchConvertBinary(ctx, []serve.ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "postgresql", Serialized: "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary batch: converted=%d errors=%d\n", binBatch.Converted, binBatch.Errors)

	fmt.Println("\n== compare ==")
	cmp, err := c.Compare(ctx,
		serve.ConvertRequest{Dialect: "postgresql", Serialized: pgPlan},
		serve.ConvertRequest{Dialect: "postgresql", Serialized: "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equal=%v similarity=%.2f edit distance=%d\n", cmp.Equal, cmp.Similarity, cmp.EditDistance)

	fmt.Println("\n== metrics ==")
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests: convert=%d batch=%d compare=%d; cache: hits=%d misses=%d\n",
		m.Requests.Convert, m.Requests.Batch, m.Requests.Compare, m.Cache.Hits, m.Cache.Misses)

	// Graceful drain: the listener closes, in-flight work finishes, and
	// Serve returns clean — what SIGTERM triggers in cmd/uplan-serve.
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained clean")
}
