// Extensibility: the paper's Section IV-B walkthrough — a hypothetical
// PostgreSQL "LLM Join" operator is added to the registry with one call,
// plans using it convert and visualize without touching any application
// code, and older applications degrade gracefully via Downgrade.
package main

import (
	"fmt"
	"log"

	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/viz"
)

// futurePlan is EXPLAIN output from a future PostgreSQL with an LLM-based
// join operator.
const futurePlan = `LLM Join  (cost=100.00..500.00 rows=42 width=16)
  Join Prompt: match customers to support tickets
  ->  Seq Scan on customers  (cost=0.00..35.50 rows=2550 width=8)
  ->  Seq Scan on tickets  (cost=0.00..35.50 rows=900 width=8)
`

func main() {
	// 1. Unknown operators do not break conversion: the generic fallback
	// classifies them as Executor operations.
	plan, err := convert.Convert("postgresql", futurePlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== before registering the keyword (generic fallback) ==")
	fmt.Printf("root operation: %s\n\n", plan.Root.Op)

	// 2. Registering the keyword takes two calls (the paper: "adding the
	// keyword LLM Join ... without impacting the rest").
	reg := core.DefaultRegistry()
	reg.AddOperation("LLM Join", core.Join, "join computed by a large language model")
	if err := reg.AliasOperation("postgresql", "LLM Join", "LLM Join"); err != nil {
		log.Fatal(err)
	}
	conv, err := convert.For("postgresql", reg)
	if err != nil {
		log.Fatal(err)
	}
	plan, err = conv.Convert(futurePlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== after registering the keyword ==")
	fmt.Printf("root operation: %s (registry version %d)\n\n", plan.Root.Op, reg.Version())

	// 3. Forward compatibility: the visualization tool renders the new
	// operator with no modification.
	fmt.Println("== visualized without any renderer change ==")
	fmt.Print(viz.ASCII(plan))

	// 4. Backward compatibility: an application built against a grammar
	// that never heard of "LLM Join" downgrades it to a generic operation
	// instead of failing.
	old := core.CurrentKnownSet()
	old.Operations = map[string]bool{
		"Full Table Scan": true, "Hash Join": true, "Sort": true,
	}
	downgraded := core.Downgrade(plan, old)
	fmt.Println("\n== downgraded for an older application ==")
	fmt.Printf("root operation: %s\n", downgraded.Root.Op)
	if pr, ok := downgraded.Root.Property("original operation"); ok {
		fmt.Printf("original preserved as property: %s\n", pr.Value.Str)
	}

	// 5. Deprecation: removing the keyword restores the generic handling.
	reg.RemoveOperation("LLM Join")
	plan, err = conv.Convert(futurePlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter removal, root operation: %s\n", plan.Root.Op)
}
