package uplan

import (
	"strings"
	"testing"
)

const pgPlan = `Seq Scan on t0  (cost=0.00..35.50 rows=2550 width=4)
  Filter: (c0 < 100)
Planning Time: 0.124 ms
`

func TestFacadeConvert(t *testing.T) {
	plan, err := Convert("postgresql", pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "Full Table Scan" || plan.Root.Op.Category != Producer {
		t.Errorf("root = %v", plan.Root.Op)
	}
	if _, ok := plan.Property("planning time"); !ok {
		t.Error("plan property lost")
	}
	h := plan.Histogram()
	if h[Producer] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestFacadeDialects(t *testing.T) {
	ds := Dialects()
	if len(ds) != 9 {
		t.Errorf("dialects = %v", ds)
	}
	if _, err := Convert("oracle", "x"); err == nil {
		t.Error("unknown dialect must fail")
	}
}

func TestFacadeRoundTrips(t *testing.T) {
	plan, err := Convert("postgresql", pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	viaText, err := ParseText(plan.MarshalIndentedText())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Equal(viaText) {
		t.Error("text round trip broken")
	}
	data, err := plan.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Equal(viaJSON) {
		t.Error("json round trip broken")
	}
}

func TestFacadeRegistry(t *testing.T) {
	reg := DefaultRegistry()
	op := reg.ResolveOperation("tidb", "TableFullScan")
	if op.Name != "Full Table Scan" {
		t.Errorf("resolve = %v", op)
	}
	if !strings.Contains(plan4Categories(), "Producer") {
		t.Error("categories missing")
	}
}

func plan4Categories() string {
	var b strings.Builder
	for _, c := range []OperationCategory{Producer, Combinator, Join, Folder, Projector, Executor, Consumer} {
		b.WriteString(string(c))
		b.WriteByte(' ')
	}
	for _, c := range []PropertyCategory{Cardinality, Cost, Configuration, Status} {
		b.WriteString(string(c))
		b.WriteByte(' ')
	}
	return b.String()
}
