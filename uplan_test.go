package uplan

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

const pgPlan = `Seq Scan on t0  (cost=0.00..35.50 rows=2550 width=4)
  Filter: (c0 < 100)
Planning Time: 0.124 ms
`

func TestFacadeConvert(t *testing.T) {
	plan, err := Convert("postgresql", pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "Full Table Scan" || plan.Root.Op.Category != Producer {
		t.Errorf("root = %v", plan.Root.Op)
	}
	if _, ok := plan.Property("planning time"); !ok {
		t.Error("plan property lost")
	}
	h := plan.Histogram()
	if h[Producer] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestFacadeDialects(t *testing.T) {
	ds := Dialects()
	if len(ds) != 9 {
		t.Errorf("dialects = %v", ds)
	}
	if !sort.StringsAreSorted(ds) {
		t.Errorf("Dialects() not sorted: %v", ds)
	}
	if _, err := Convert("oracle", "x"); err == nil {
		t.Error("unknown dialect must fail")
	}
}

// TestFacadeConvertConcurrent hammers the cached-converter path from many
// goroutines (meaningful under -race): results must match the sequential
// ones and the shared converters must tolerate concurrent use.
func TestFacadeConvertConcurrent(t *testing.T) {
	want, err := Convert("postgresql", pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := Convert("postgresql", pgPlan)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(want) {
					t.Error("concurrent conversion diverged from sequential result")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestFacadeConvertBatch exercises the batch API end to end through the
// facade, including an injected failure.
func TestFacadeConvertBatch(t *testing.T) {
	records := []BatchRecord{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "oracle", Serialized: "unsupported"},
		{Dialect: "postgresql", Serialized: pgPlan},
	}
	results, stats := ConvertBatch(records, PipelineOptions{Workers: 2})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("valid records failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown dialect must fail")
	}
	if stats.Converted != 2 || stats.Errors != 1 {
		t.Errorf("stats = %d converted, %d errors", stats.Converted, stats.Errors)
	}
	if results[0].Plan.Root.Op.Name != "Full Table Scan" {
		t.Errorf("root = %v", results[0].Plan.Root.Op)
	}
}

// TestFacadePipelineStreaming drives the streaming API: ordered results
// over a bounded pipeline.
func TestFacadePipelineStreaming(t *testing.T) {
	p := NewPipeline(PipelineOptions{Workers: 4, Ordered: true})
	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(BatchRecord{Dialect: "postgresql", Serialized: pgPlan})
		}
		p.Close()
	}()
	got := 0
	for r := range p.Results() {
		if r.Seq != got {
			t.Fatalf("Seq %d out of order (want %d)", r.Seq, got)
		}
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		got++
	}
	if got != n {
		t.Fatalf("received %d results, want %d", got, n)
	}
	if s := p.Stats(); s.Converted != n {
		t.Errorf("stats.Converted = %d, want %d", s.Converted, n)
	}
}

func TestFacadeRoundTrips(t *testing.T) {
	plan, err := Convert("postgresql", pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	viaText, err := ParseText(plan.MarshalIndentedText())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Equal(viaText) {
		t.Error("text round trip broken")
	}
	data, err := plan.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Equal(viaJSON) {
		t.Error("json round trip broken")
	}
}

func TestFacadeRegistry(t *testing.T) {
	reg := DefaultRegistry()
	op := reg.ResolveOperation("tidb", "TableFullScan")
	if op.Name != "Full Table Scan" {
		t.Errorf("resolve = %v", op)
	}
	if !strings.Contains(plan4Categories(), "Producer") {
		t.Error("categories missing")
	}
}

// TestFacadeSharedRegistryExtension pins the documented extensibility
// path: extending SharedRegistry is visible through Convert's cached
// converters.
func TestFacadeSharedRegistryExtension(t *testing.T) {
	reg := SharedRegistry()
	reg.AddOperation("LLM Join", Join, "the paper's extensibility example")
	if err := reg.AliasOperation("postgresql", "LLM Join Probe", "LLM Join"); err != nil {
		t.Fatal(err)
	}
	plan, err := Convert("postgresql",
		"LLM Join Probe  (cost=0.00..1.00 rows=1 width=4)\n")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Op.Name != "LLM Join" || plan.Root.Op.Category != Join {
		t.Errorf("extension not visible through Convert: %v", plan.Root.Op)
	}
}

func plan4Categories() string {
	var b strings.Builder
	for _, c := range []OperationCategory{Producer, Combinator, Join, Folder, Projector, Executor, Consumer} {
		b.WriteString(string(c))
		b.WriteByte(' ')
	}
	for _, c := range []PropertyCategory{Cardinality, Cost, Configuration, Status} {
		b.WriteString(string(c))
		b.WriteByte(' ')
	}
	return b.String()
}

// TestFacadeArenaLifecycle exercises the exported arena surface end to
// end: ConvertInto builds into a caller-owned arena, Clone detaches, Reset
// recycles, and the batch pipeline's ReuseArenas option is reachable
// through the facade options type.
func TestFacadeArenaLifecycle(t *testing.T) {
	const raw = "Seq Scan on t0  (cost=0.00..18.50 rows=850 width=4)\n" +
		"  Filter: (c0 < 100)\nPlanning Time: 0.100 ms\n"
	ar := NewArena()
	first, err := ConvertInto("postgresql", raw, ar)
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	ar.Reset()
	second, err := ConvertInto("postgresql", raw, ar)
	if err != nil {
		t.Fatal(err)
	}
	if !keep.Equal(second) {
		t.Errorf("detached clone does not match a rebuild of the same input")
	}
	direct, err := Convert("postgresql", raw)
	if err != nil {
		t.Fatal(err)
	}
	if !keep.Equal(direct) {
		t.Errorf("arena-built plan differs from Convert's result")
	}

	records := []BatchRecord{{Dialect: "postgresql", Serialized: raw}, {Dialect: "postgresql", Serialized: raw}}
	results, stats := ConvertBatch(records, PipelineOptions{Workers: 2, ReuseArenas: true})
	if stats.Errors != 0 {
		t.Fatalf("ReuseArenas batch errors: %d", stats.Errors)
	}
	for _, r := range results {
		if !r.Plan.Equal(direct) {
			t.Errorf("ReuseArenas batch plan differs from Convert's result")
		}
	}
}

// TestRunCampaignsFacade drives the whole nine-engine campaign fleet
// through the public facade with a small budget: stats must cover every
// engine, and the finding set must be seed-deterministic.
func TestRunCampaignsFacade(t *testing.T) {
	opts := DefaultCampaignOptions()
	opts.Queries = 15
	opts.Workers = 4
	opts.Seed = 9
	res, err := RunCampaigns(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Engines) != 9 {
		t.Fatalf("campaign covered %d engines, want 9", len(res.Stats.Engines))
	}
	if res.Stats.DistinctPlans == 0 {
		t.Error("no cross-engine plans observed")
	}
	if !strings.Contains(res.Stats.String(), "postgresql") {
		t.Error("stats table must render per-engine rows")
	}
	again, err := RunCampaigns(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Findings, res.Findings) {
		t.Errorf("findings not reproducible:\nfirst:  %v\nsecond: %v", res.Findings, again.Findings)
	}
}
