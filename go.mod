module uplan

go 1.24
